package obs

// Service-level objectives evaluated over a recorded Timeline. An SLO is
// an objective ("p99 hand-off replan latency stays under 50 ms", "session
// availability stays at or above 99.9%") plus a compliance target and a
// rolling window; evaluation walks the timeline frames in the window,
// classifies each as good or violating, and reports compliance and
// error-budget burn — the fleet-scale chaos-run verdict the paper's
// compute-as-a-service pitch needs to be checkable.

import (
	"fmt"
	"io"
	"math"
)

// SLOKind selects how a frame is judged.
type SLOKind string

const (
	// SLOLatency reads a quantile family and requires its Q-quantile
	// estimate to stay at or below Objective.
	SLOLatency SLOKind = "latency"
	// SLORatio reads Metric / TotalMetric (gauge levels, or counter deltas
	// per frame) and requires the ratio to stay at or above Objective.
	SLORatio SLOKind = "ratio"
)

// SLO is one objective over the timeline.
type SLO struct {
	// Name labels the objective in reports.
	Name string  `json:"name"`
	Kind SLOKind `json:"kind"`
	// Metric is the quantile family (latency) or numerator family (ratio);
	// Labels optionally selects one labelled series of it.
	Metric string            `json:"metric"`
	Labels map[string]string `json:"labels,omitempty"`
	// TotalMetric is the ratio denominator family (same labels rule).
	TotalMetric string `json:"total_metric,omitempty"`
	// Q is the latency quantile judged; it must be one of ExportQuantiles
	// (default 0.99).
	Q float64 `json:"q,omitempty"`
	// Objective is the bound: an upper bound on the latency estimate, or a
	// lower bound on the ratio.
	Objective float64 `json:"objective"`
	// Target is the compliance target over the window in (0,1] — the
	// fraction of frames that must meet the objective (default 0.99). The
	// error budget is 1-Target.
	Target float64 `json:"target,omitempty"`
	// WindowSec restricts evaluation to the trailing window of the
	// timeline (0 = every recorded frame).
	WindowSec float64 `json:"window_sec,omitempty"`
}

// SLOResult is the outcome of evaluating one SLO.
type SLOResult struct {
	SLO SLO `json:"slo"`
	// Frames is how many timeline frames carried the metric inside the
	// window; Violations how many of them broke the objective.
	Frames     int `json:"frames"`
	Violations int `json:"violations"`
	// Compliance is the good fraction (1 when no frame carried the
	// metric); Met reports Compliance >= Target.
	Compliance float64 `json:"compliance"`
	Met        bool    `json:"met"`
	// BudgetBurn is the consumed error budget as a multiple of the
	// allowance: (1-Compliance)/(1-Target). Over 1 means the objective is
	// blown; with Target == 1 any violation burns +Inf.
	BudgetBurn float64 `json:"budget_burn"`
	// Worst is the worst frame value seen: the highest latency estimate,
	// or the lowest ratio (NaN when Frames == 0).
	Worst float64 `json:"worst"`
}

func (s SLO) withDefaults() SLO {
	if s.Q == 0 {
		s.Q = 0.99
	}
	if s.Target == 0 {
		s.Target = 0.99
	}
	return s
}

// Eval judges the SLO over the frames (oldest first, as Timeline.Frames
// returns them).
func (s SLO) Eval(frames []Frame) SLOResult {
	s = s.withDefaults()
	res := SLOResult{SLO: s, Worst: math.NaN()}
	cutoff := math.Inf(-1)
	if s.WindowSec > 0 && len(frames) > 0 {
		cutoff = frames[len(frames)-1].TSec - s.WindowSec
	}
	for _, fr := range frames {
		if fr.TSec < cutoff {
			continue
		}
		v, ok := s.frameValue(fr)
		if !ok {
			continue
		}
		res.Frames++
		bad := false
		switch s.Kind {
		case SLORatio:
			bad = v < s.Objective
			if math.IsNaN(res.Worst) || v < res.Worst {
				res.Worst = v
			}
		default: // SLOLatency
			bad = v > s.Objective
			if math.IsNaN(res.Worst) || v > res.Worst {
				res.Worst = v
			}
		}
		if bad {
			res.Violations++
		}
	}
	res.Compliance = 1
	if res.Frames > 0 {
		res.Compliance = 1 - float64(res.Violations)/float64(res.Frames)
	}
	res.Met = res.Compliance >= s.Target
	budget := 1 - s.Target
	switch {
	case res.Violations == 0:
		res.BudgetBurn = 0
	case budget <= 0:
		res.BudgetBurn = math.Inf(1)
	default:
		res.BudgetBurn = (1 - res.Compliance) / budget
	}
	return res
}

// frameValue extracts the judged value from one frame.
func (s SLO) frameValue(fr Frame) (float64, bool) {
	switch s.Kind {
	case SLORatio:
		num, okN := findPoint(fr, s.Metric, s.Labels)
		den, okD := findPoint(fr, s.TotalMetric, s.Labels)
		if !okN || !okD {
			return 0, false
		}
		nv, dv := num.Value, den.Value
		if dv == 0 {
			return 0, false
		}
		return nv / dv, true
	default:
		p, ok := findPoint(fr, s.Metric, s.Labels)
		if !ok || p.Kind != KindQuantile || len(p.Quantiles) == 0 {
			return 0, false
		}
		for _, qp := range p.Quantiles {
			if qp.P == s.Q {
				return qp.Value, true
			}
		}
		return 0, false
	}
}

func findPoint(fr Frame, name string, labels map[string]string) (Point, bool) {
	for _, p := range fr.Points {
		if p.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if p.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return p, true
		}
	}
	return Point{}, false
}

// EvalSLOs evaluates each objective over the timeline's current frames.
func EvalSLOs(tl *Timeline, slos ...SLO) []SLOResult {
	frames := tl.Frames()
	out := make([]SLOResult, len(slos))
	for i, s := range slos {
		out[i] = s.Eval(frames)
	}
	return out
}

// WriteSLOTable renders results as an aligned text report.
func WriteSLOTable(w io.Writer, results []SLOResult) error {
	if _, err := fmt.Fprintf(w, "%-34s %-8s %10s %10s %10s %8s\n",
		"objective", "verdict", "compliance", "burn", "worst", "frames"); err != nil {
		return err
	}
	for _, r := range results {
		verdict := "MET"
		if !r.Met {
			verdict = "MISSED"
		}
		burn := fmt.Sprintf("%.2fx", r.BudgetBurn)
		if math.IsInf(r.BudgetBurn, 1) {
			burn = "inf"
		}
		worst := "—"
		if !math.IsNaN(r.Worst) {
			worst = fmtShort(r.Worst)
		}
		if _, err := fmt.Fprintf(w, "%-34s %-8s %9.2f%% %10s %10s %8d\n",
			r.SLO.Name, verdict, 100*r.Compliance, burn, worst, r.Frames); err != nil {
			return err
		}
	}
	return nil
}
