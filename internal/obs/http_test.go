package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "Demo.").Add(3)
	rt := RegisterRuntimeMetrics(reg)
	rt.Collect()
	srv := httptest.NewServer(DebugMux(reg))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "demo_total 3") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if !strings.Contains(body, "go_goroutines") {
		t.Fatalf("/metrics missing runtime gauges:\n%s", body)
	}

	code, body = get(t, srv, "/metrics?format=json")
	var snap []FamilySnapshot
	if code != 200 || json.Unmarshal([]byte(body), &snap) != nil {
		t.Fatalf("/metrics?format=json = %d:\n%s", code, body)
	}

	code, body = get(t, srv, "/healthz")
	if code != 200 || strings.TrimSpace(body) != "ok" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, srv, "/debug/vars")
	if code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d", code)
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}
