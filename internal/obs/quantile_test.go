package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

// exactQuantile is the sorted-sample reference the sketch is judged against.
func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// checkAccuracy feeds samples into a sketch and requires every exported
// quantile to land within the documented relative error (sqrt(gamma)-1 ≈ 1%
// per bucket boundary; 2.5% leaves margin for rank granularity).
func checkAccuracy(t *testing.T, name string, samples []float64) {
	t.Helper()
	q := &Quantile{}
	for _, v := range samples {
		q.Observe(v)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := q.Quantile(p)
		want := exactQuantile(sorted, p)
		if want == 0 {
			continue
		}
		if rel := math.Abs(got-want) / math.Abs(want); rel > 0.025 {
			t.Errorf("%s p%g: got %g, exact %g (rel err %.3f > 0.025)", name, 100*p, got, want, rel)
		}
	}
	if q.Count() != uint64(len(samples)) {
		t.Errorf("%s count = %d, want %d", name, q.Count(), len(samples))
	}
}

func TestQuantileAccuracyUniform(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = 1 + 99*r.Float64() // uniform on [1, 100)
	}
	checkAccuracy(t, "uniform", samples)
}

func TestQuantileAccuracyExponential(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = r.ExpFloat64() * 10 // heavy right tail
	}
	checkAccuracy(t, "exponential", samples)
}

func TestQuantileAccuracyBimodal(t *testing.T) {
	// Fast path vs slow path: two well-separated modes, the shape where
	// fixed histogram buckets lose the p99 entirely.
	r := rand.New(rand.NewSource(3))
	samples := make([]float64, 50000)
	for i := range samples {
		if r.Float64() < 0.9 {
			samples[i] = 0.5 + 0.1*r.Float64()
		} else {
			samples[i] = 200 + 50*r.Float64()
		}
	}
	checkAccuracy(t, "bimodal", samples)
}

func TestQuantileEdgeCases(t *testing.T) {
	q := &Quantile{}
	if got := q.Quantile(0.5); got != 0 {
		t.Errorf("empty sketch p50 = %g, want 0", got)
	}
	q.Observe(42)
	for _, p := range []float64{0, 0.5, 1} {
		if got := q.Quantile(p); got != 42 {
			t.Errorf("single-sample p%g = %g, want 42 (clamped to [min,max])", 100*p, got)
		}
	}
	q.Observe(-5) // non-positive lands in the underflow bucket
	q.Observe(0)
	if q.Count() != 3 {
		t.Errorf("count = %d, want 3", q.Count())
	}
	if got := q.Min(); got != -5 {
		t.Errorf("min = %g, want -5", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Quantile(1.5) did not panic")
		}
	}()
	q.Quantile(1.5)
}

func TestQuantileConcurrent(t *testing.T) {
	q := &Quantile{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				q.Observe(1 + r.Float64())
			}
		}(int64(w))
	}
	wg.Wait()
	if q.Count() != workers*per {
		t.Errorf("count = %d, want %d", q.Count(), workers*per)
	}
	if p50 := q.Quantile(0.5); p50 < 1 || p50 > 2 {
		t.Errorf("p50 = %g outside observed [1,2]", p50)
	}
}

func TestQuantileVec(t *testing.T) {
	reg := NewRegistry()
	vec := reg.QuantileVec("rpc_ms", "per-method latency", "method")
	vec.With("get").Observe(1)
	vec.With("put").Observe(100)
	if same := vec.With("get"); same != vec.With("get") {
		t.Error("With not cached per label value")
	}
	snap := reg.Snapshot()
	var fam *FamilySnapshot
	for i := range snap {
		if snap[i].Name == "rpc_ms" {
			fam = &snap[i]
		}
	}
	if fam == nil || fam.Kind != KindQuantile || len(fam.Samples) != 2 {
		t.Fatalf("bad family: %+v", fam)
	}
	for _, s := range fam.Samples {
		if len(s.Quantiles) != len(ExportQuantiles) {
			t.Errorf("sample %v: %d quantile points, want %d", s.Labels, len(s.Quantiles), len(ExportQuantiles))
		}
	}
}

func TestQuantilePrometheusSummary(t *testing.T) {
	reg := NewRegistry()
	q := reg.Quantile("req_ms", "request latency")
	for i := 1; i <= 100; i++ {
		q.Observe(float64(i))
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE req_ms summary",
		`req_ms{quantile="0.5"}`,
		`req_ms{quantile="0.99"}`,
		"req_ms_sum 5050",
		"req_ms_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
