package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs processed.")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registration returns the same underlying counter.
	if again := r.Counter("jobs_total", "Jobs processed."); again.Value() != 5 {
		t.Fatalf("re-registered counter = %d, want 5", again.Value())
	}
}

func TestCounterVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("cmds_total", "Commands.", "verb")
	v.With("GET").Add(3)
	v.With("SET").Inc()
	if v.With("GET").Value() != 3 || v.With("SET").Value() != 1 {
		t.Fatalf("label series mixed up: GET=%d SET=%d", v.With("GET").Value(), v.With("SET").Value())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Samples) != 2 {
		t.Fatalf("snapshot = %+v, want 1 family with 2 samples", snap)
	}
	// Samples sorted by label value: GET before SET.
	if snap[0].Samples[0].Labels["verb"] != "GET" || snap[0].Samples[0].Value != 3 {
		t.Fatalf("first sample = %+v", snap[0].Samples[0])
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "Queue depth.")
	g.Set(7.5)
	g.Add(-2.5)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	snap := r.Snapshot()
	s := snap[0].Samples[0]
	want := []Bucket{{0.1, 1}, {1, 3}, {10, 4}, {math.Inf(1), 5}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket[%d] = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	// Boundary value lands in its bucket (le is inclusive).
	h2 := r.Histogram("edge_seconds", "", []float64{1})
	h2.Observe(1)
	if got := r.Snapshot()[0].Samples[0].Buckets[0].Count; got != 1 {
		t.Fatalf("observation at bound not counted in bucket: %d", got)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "")
	g := r.Gauge("g", "")
	hv := r.HistogramVec("h", "", []float64{1, 2}, "worker")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := hv.With("w") // shared series across workers
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1.5)
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g.Value(), workers*perWorker)
	}
	if got := hv.With("w").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("requests_total", "Requests served.", "code").With("200").Add(9)
	r.Gauge("temp", "Temperature.").Set(36.6)
	r.Histogram("dur_seconds", "Duration.", []float64{0.5}).Observe(0.25)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Requests served.",
		"# TYPE requests_total counter",
		`requests_total{code="200"} 9`,
		"# TYPE temp gauge",
		"temp 36.6",
		"# TYPE dur_seconds histogram",
		`dur_seconds_bucket{le="0.5"} 1`,
		`dur_seconds_bucket{le="+Inf"} 1`,
		"dur_seconds_sum 0.25",
		"dur_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("x_total", "", "path").With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `x_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("bad escaping:\n%s", b.String())
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(2)
	r.Histogram("h_seconds", "H.", []float64{1}).Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var snap []FamilySnapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(snap) != 2 || snap[0].Name != "a_total" || snap[0].Samples[0].Value != 2 {
		t.Fatalf("round-trip = %+v", snap)
	}
	// The histogram's +Inf bucket survives the JSON round trip.
	buckets := snap[1].Samples[0].Buckets
	if len(buckets) != 2 || !math.IsInf(buckets[1].UpperBound, 1) || buckets[1].Count != 1 {
		t.Fatalf("histogram buckets = %+v", buckets)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("m", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz", "")
	r.Counter("aa", "")
	snap := r.Snapshot()
	if snap[0].Name != "aa" || snap[1].Name != "zz" {
		t.Fatalf("families not sorted: %s, %s", snap[0].Name, snap[1].Name)
	}
}
