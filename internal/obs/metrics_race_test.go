package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestHistogramVecConcurrentWith hammers the vec lookup itself — every
// Observe goes through With, mixing a shared series with per-worker ones —
// so the label-map path is exercised under the race detector, not just the
// cached child.
func TestHistogramVecConcurrentWith(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("work_seconds", "", []float64{1, 2}, "worker")
	qv := r.QuantileVec("work_ms", "", "worker")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := fmt.Sprintf("w%d", w)
			for i := 0; i < perWorker; i++ {
				hv.With("shared").Observe(1.5)
				hv.With(own).Observe(0.5)
				qv.With("shared").Observe(1.5)
			}
		}(w)
	}
	wg.Wait()
	if got := hv.With("shared").Count(); got != workers*perWorker {
		t.Errorf("shared histogram count = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := hv.With(fmt.Sprintf("w%d", w)).Count(); got != perWorker {
			t.Errorf("worker %d count = %d, want %d", w, got, perWorker)
		}
	}
	if got := qv.With("shared").Count(); got != workers*perWorker {
		t.Errorf("shared quantile count = %d, want %d", got, workers*perWorker)
	}
}
