package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records parent/child spans against an injectable clock. A nil
// *Tracer is a valid no-op: every method (and every method of the nil
// *Span it hands out) does nothing, so instrumented code never needs nil
// checks on its hot path.
type Tracer struct {
	now func() float64 // seconds; wall or simulated

	mu       sync.Mutex
	nextID   uint64
	finished []SpanRecord
}

// SpanRecord is one completed span.
type SpanRecord struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"` // 0 = root
	Name   string            `json:"name"`
	Start  float64           `json:"start"` // seconds on the tracer clock
	End    float64           `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span length in seconds.
func (r SpanRecord) Duration() float64 { return r.End - r.Start }

// NewTracer creates a tracer. A nil clock uses wall time; pass a simulation
// clock (e.g. netsim's Sim.Now) to drive spans from simulated time
// deterministically.
func NewTracer(clock func() float64) *Tracer {
	if clock == nil {
		epoch := time.Now()
		clock = func() float64 { return time.Since(epoch).Seconds() }
	}
	return &Tracer{now: clock}
}

// Span is an in-flight span. Create via Tracer.Start or Span.Child; finish
// with End. A nil *Span is a valid no-op.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  float64

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// Start begins a root span.
func (t *Tracer) Start(name string) *Span { return t.start(name, 0) }

func (t *Tracer) start(name string, parent uint64) *Span {
	if t == nil {
		return nil
	}
	start := t.now()
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{t: t, id: id, parent: parent, name: name, start: start}
}

// Child begins a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.id)
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End finishes the span, records it with the tracer, and returns its
// duration in seconds. Ending twice records once.
func (s *Span) End() float64 {
	if s == nil {
		return 0
	}
	end := s.t.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return 0
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := SpanRecord{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, End: end, Attrs: attrs}
	s.t.mu.Lock()
	s.t.finished = append(s.t.finished, rec)
	s.t.mu.Unlock()
	return rec.Duration()
}

// Records returns a copy of all finished spans in completion order.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.finished...)
}

// Len returns the number of finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.finished)
}

// WriteChromeTrace exports finished spans as Chrome trace-event JSON, one
// complete ("ph":"X") event per line inside a JSON array, so the output is
// both line-greppable and loadable in about://tracing / Perfetto.
// Timestamps are the tracer clock scaled to microseconds.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	recs := t.Records()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	var b strings.Builder
	b.WriteString("[\n")
	for i, r := range recs {
		args := map[string]string{"span_id": fmt.Sprint(r.ID)}
		if r.Parent != 0 {
			args["parent_id"] = fmt.Sprint(r.Parent)
		}
		for k, v := range r.Attrs {
			args[k] = v
		}
		ev := map[string]any{
			"name": r.Name,
			"ph":   "X",
			"pid":  1,
			"tid":  1,
			"ts":   r.Start * 1e6,
			"dur":  r.Duration() * 1e6,
			"args": args,
		}
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		b.Write(line)
		if i < len(recs)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("]\n")
	_, err := io.WriteString(w, b.String())
	return err
}
