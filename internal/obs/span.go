package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultSpanLimit bounds the finished spans a Tracer retains unless
// SetLimit overrides it. Once full, each new span evicts the oldest —
// multi-hour runs keep the freshest window instead of growing without
// bound.
const DefaultSpanLimit = 1 << 18

// Tracer records parent/child spans against an injectable clock into a
// bounded ring. A nil *Tracer is a valid no-op: every method (and every
// method of the nil *Span it hands out) does nothing, so instrumented code
// never needs nil checks on its hot path.
type Tracer struct {
	now func() float64 // seconds; wall or simulated

	mu       sync.Mutex
	nextID   uint64
	limit    int
	finished []SpanRecord // circular once len == limit; oldest at head
	head     int
	dropped  uint64

	droppedCtr *Counter // optional: spans_dropped_total on a registry
}

// SpanRecord is one completed span.
type SpanRecord struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"` // 0 = root
	Name   string            `json:"name"`
	Start  float64           `json:"start"` // seconds on the tracer clock
	End    float64           `json:"end"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span length in seconds.
func (r SpanRecord) Duration() float64 { return r.End - r.Start }

// NewTracer creates a tracer. A nil clock uses wall time; pass a simulation
// clock (e.g. netsim's Sim.Now) to drive spans from simulated time
// deterministically.
func NewTracer(clock func() float64) *Tracer {
	if clock == nil {
		epoch := time.Now()
		clock = func() float64 { return time.Since(epoch).Seconds() }
	}
	return &Tracer{now: clock, limit: DefaultSpanLimit}
}

// SetLimit caps the retained finished spans at n (minimum 1), keeping the
// newest spans if the ring already holds more.
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < len(t.finished) {
		recs := t.orderedLocked()
		t.finished = recs[len(recs)-n:]
		t.head = 0
	}
	t.limit = n
}

// Dropped returns how many finished spans the ring has evicted.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Instrument registers spans_dropped_total on reg and wires ring evictions
// into it, so long-running daemons can alert on trace loss.
func (t *Tracer) Instrument(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	c := reg.Counter("spans_dropped_total",
		"Finished spans evicted from the tracer ring (oldest-first) after it filled.")
	t.mu.Lock()
	t.droppedCtr = c
	t.mu.Unlock()
}

// Span is an in-flight span. Create via Tracer.Start or Span.Child; finish
// with End. A nil *Span is a valid no-op.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  float64

	mu    sync.Mutex
	attrs map[string]string
	ended bool
}

// Start begins a root span.
func (t *Tracer) Start(name string) *Span { return t.start(name, 0) }

func (t *Tracer) start(name string, parent uint64) *Span {
	if t == nil {
		return nil
	}
	start := t.now()
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{t: t, id: id, parent: parent, name: name, start: start}
}

// Child begins a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.id)
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End finishes the span, records it with the tracer, and returns its
// duration in seconds. Ending twice records once.
func (s *Span) End() float64 {
	if s == nil {
		return 0
	}
	end := s.t.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return 0
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	rec := SpanRecord{ID: s.id, Parent: s.parent, Name: s.name, Start: s.start, End: end, Attrs: attrs}
	t := s.t
	var droppedCtr *Counter
	t.mu.Lock()
	if len(t.finished) < t.limit {
		t.finished = append(t.finished, rec)
	} else {
		t.finished[t.head] = rec
		t.head = (t.head + 1) % len(t.finished)
		t.dropped++
		droppedCtr = t.droppedCtr
	}
	t.mu.Unlock()
	if droppedCtr != nil {
		droppedCtr.Inc()
	}
	return rec.Duration()
}

// orderedLocked returns the ring contents in completion order; caller
// holds t.mu.
func (t *Tracer) orderedLocked() []SpanRecord {
	out := make([]SpanRecord, 0, len(t.finished))
	out = append(out, t.finished[t.head:]...)
	out = append(out, t.finished[:t.head]...)
	return out
}

// Records returns a copy of the retained finished spans in completion
// order (oldest evicted first once the ring wraps).
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.finished) == 0 {
		return nil
	}
	return t.orderedLocked()
}

// Len returns the number of retained finished spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.finished)
}

// WriteChromeTrace exports finished spans as Chrome trace-event JSON, one
// complete ("ph":"X") event per line inside a JSON array, so the output is
// both line-greppable and loadable in about://tracing / Perfetto. Events
// stream to w as they are encoded — memory stays O(1) in the trace size
// beyond the span records themselves. Timestamps are the tracer clock
// scaled to microseconds.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	recs := t.Records()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, r := range recs {
		args := map[string]string{"span_id": fmt.Sprint(r.ID)}
		if r.Parent != 0 {
			args["parent_id"] = fmt.Sprint(r.Parent)
		}
		for k, v := range r.Attrs {
			args[k] = v
		}
		ev := map[string]any{
			"name": r.Name,
			"ph":   "X",
			"pid":  1,
			"tid":  1,
			"ts":   r.Start * 1e6,
			"dur":  r.Duration() * 1e6,
			"args": args,
		}
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if i < len(recs)-1 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
