// Package obs is the repo's stdlib-only observability layer: a metrics
// registry (labelled counters, gauges, fixed-bucket histograms, and
// streaming-quantile sketches with lock-cheap atomic updates and
// Prometheus-text/JSON exposition), a span tracer with an injectable clock
// (so simulated time can drive spans deterministically) and a bounded
// finished-span ring, a flight recorder (Timeline: per-cadence samples of
// every family into a bounded ring, exportable as JSONL/CSV/HTML) with SLO
// evaluation on top, and the debug HTTP surface (/metrics, /healthz,
// /timeline, /slo, expvar, pprof) that cmd/meetupd and cmd/fleetsim mount
// behind -debug.
//
// Design notes: metric families are registered once (re-registration with
// identical kind and label names returns the existing family; a mismatch
// panics — it is a programming error on par with redeclaring a variable).
// Hot paths hold the concrete *Counter/*Gauge/*Histogram and update it with
// a single atomic op; label resolution (With) costs one RLock map hit and
// should be hoisted out of loops.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind names a metric family type.
type Kind string

// The metric family kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
	// KindQuantile is a streaming-quantile sketch (see quantile.go); it is
	// exposed in the Prometheus text format as a summary.
	KindQuantile Kind = "quantile"
)

// DefBuckets is the default histogram bucketing (seconds-flavoured, matching
// the Prometheus convention).
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing integer metric.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf bucket is implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// labelKey joins label values with a separator that cannot appear in them
// unescaped ambiguity-free (0xff is invalid UTF-8, fine for a map key).
func labelKey(values []string) string { return strings.Join(values, "\xff") }

type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histograms only

	mu       sync.RWMutex
	children map[string]any      // labelKey -> *Counter | *Gauge | *Histogram
	values   map[string][]string // labelKey -> label values
}

func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = make()
	f.children[key] = c
	f.values[key] = append([]string(nil), values...)
	return c
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	f := v.f
	return f.child(values, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{bounds: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry (or use Default).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family

	hookMu        sync.Mutex
	scrapeHooks   []func()
	runtimeHooked bool
}

// OnScrape registers f to run before every HTTP scrape of the registry
// (ServeHTTP), letting pull-style collectors refresh gauges lazily instead
// of relying on callers to poll. Hooks do not run for direct Snapshot
// calls, so high-frequency samplers (the Timeline) skip their cost.
func (r *Registry) OnScrape(f func()) {
	r.hookMu.Lock()
	r.scrapeHooks = append(r.scrapeHooks, f)
	r.hookMu.Unlock()
}

func (r *Registry) runScrapeHooks() {
	r.hookMu.Lock()
	hooks := append([]func(){}, r.scrapeHooks...)
	r.hookMu.Unlock()
	for _, f := range hooks {
		f()
	}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{families: map[string]*family{}} }

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry shared by instrumented packages.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

func (r *Registry) register(name, help string, kind Kind, labels, buckets []string, bounds []float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || labelKey(f.labels) != labelKey(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v", name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   append([]string(nil), labels...),
		buckets:  bounds,
		children: map[string]any{},
		values:   map[string][]string{},
	}
	r.families[name] = f
	return f
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, KindCounter, labels, nil, nil)}
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, KindGauge, labels, nil, nil)}
}

// Histogram registers (or fetches) an unlabelled histogram. A nil buckets
// slice uses DefBuckets. Buckets must be sorted ascending.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, KindHistogram, nil, nil, checkBuckets(name, buckets))
	bounds := f.buckets
	return f.child(nil, func() any { return newHistogram(bounds) }).(*Histogram)
}

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, KindHistogram, labels, nil, checkBuckets(name, buckets))}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		return DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending at %d", name, i))
		}
	}
	return append([]float64(nil), buckets...)
}

// Bucket is one cumulative histogram bucket in a snapshot. It serialises
// the bound as a string ("+Inf" included) because JSON has no infinity.
type Bucket struct {
	UpperBound float64
	Count      uint64 // cumulative: observations <= UpperBound
}

type bucketJSON struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// MarshalJSON renders the bound as a string so +Inf survives.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{Le: formatLe(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON parses the string bound back, accepting "+Inf".
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw bucketJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Le == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(raw.Le, 64)
		if err != nil {
			return err
		}
		b.UpperBound = v
	}
	b.Count = raw.Count
	return nil
}

// Sample is one labelled series in a snapshot.
type Sample struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     float64           `json:"value"`               // counter/gauge value; histogram/quantile sum
	Count     uint64            `json:"count,omitempty"`     // histogram/quantile only
	Buckets   []Bucket          `json:"buckets,omitempty"`   // histogram only, cumulative
	Quantiles []QuantilePoint   `json:"quantiles,omitempty"` // quantile only, ExportQuantiles estimates
}

// FamilySnapshot is the point-in-time state of one metric family.
type FamilySnapshot struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Kind    Kind     `json:"kind"`
	Samples []Sample `json:"samples"`
}

// Snapshot returns all families sorted by name, samples sorted by label key.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := Sample{}
			if len(f.labels) > 0 {
				s.Labels = map[string]string{}
				for i, lv := range f.values[k] {
					s.Labels[f.labels[i]] = lv
				}
			}
			switch m := f.children[k].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Value = m.Sum()
				s.Count = m.Count()
				cum := uint64(0)
				for i, b := range m.bounds {
					cum += m.counts[i].Load()
					s.Buckets = append(s.Buckets, Bucket{UpperBound: b, Count: cum})
				}
				cum += m.counts[len(m.bounds)].Load()
				s.Buckets = append(s.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
			case *Quantile:
				s.Value = m.Sum()
				s.Count = m.Count()
				s.Quantiles = m.snapshotQuantiles()
			}
			fs.Samples = append(fs.Samples, s)
		}
		f.mu.RUnlock()
		out = append(out, fs)
	}
	return out
}

// WriteJSON writes the snapshot as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, fam := range r.Snapshot() {
		if fam.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		kind := string(fam.Kind)
		if fam.Kind == KindQuantile {
			kind = "summary" // the Prometheus type quantile families map onto
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.Name, kind)
		for _, s := range fam.Samples {
			switch fam.Kind {
			case KindHistogram:
				for _, bk := range s.Buckets {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", fam.Name, labelString(s.Labels, "le", formatLe(bk.UpperBound)), bk.Count)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", fam.Name, labelString(s.Labels, "", ""), formatValue(s.Value))
				fmt.Fprintf(&b, "%s_count%s %d\n", fam.Name, labelString(s.Labels, "", ""), s.Count)
			case KindQuantile:
				for _, qp := range s.Quantiles {
					fmt.Fprintf(&b, "%s%s %s\n", fam.Name, labelString(s.Labels, "quantile", formatValue(qp.P)), formatValue(qp.Value))
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", fam.Name, labelString(s.Labels, "", ""), formatValue(s.Value))
				fmt.Fprintf(&b, "%s_count%s %d\n", fam.Name, labelString(s.Labels, "", ""), s.Count)
			default:
				fmt.Fprintf(&b, "%s%s %s\n", fam.Name, labelString(s.Labels, "", ""), formatValue(s.Value))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatValue(v)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// labelString renders {k="v",...} with labels sorted, optionally appending
// one extra pair (used for the histogram "le" label).
func labelString(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	// %q escapes backslash, quote, and newline — the three characters the
	// Prometheus text format requires escaped in label values.
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

var helpEscaper = strings.NewReplacer("\\", "\\\\", "\n", "\\n")

func escapeHelp(s string) string { return helpEscaper.Replace(s) }
