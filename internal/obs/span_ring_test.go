package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetLimit(4)
	reg := NewRegistry()
	tr.Instrument(reg)
	for i := 0; i < 10; i++ {
		tr.Start(fmt.Sprintf("span%d", i)).End()
	}
	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(recs))
	}
	// Oldest evicted: the survivors are the last four, in completion order.
	for i, r := range recs {
		if want := fmt.Sprintf("span%d", 6+i); r.Name != want {
			t.Errorf("ring[%d] = %s, want %s", i, r.Name, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", tr.Dropped())
	}
	found := false
	for _, fam := range reg.Snapshot() {
		if fam.Name == "spans_dropped_total" {
			found = true
			if len(fam.Samples) != 1 || fam.Samples[0].Value != 6 {
				t.Errorf("spans_dropped_total = %+v, want 6", fam.Samples)
			}
		}
	}
	if !found {
		t.Error("Instrument did not register spans_dropped_total")
	}
}

func TestTracerSetLimitTrims(t *testing.T) {
	tr := NewTracer(nil)
	for i := 0; i < 8; i++ {
		tr.Start(fmt.Sprintf("s%d", i)).End()
	}
	tr.SetLimit(3)
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("after trim: %d spans, want 3", len(recs))
	}
	if recs[0].Name != "s5" || recs[2].Name != "s7" {
		t.Errorf("trim kept %s..%s, want the newest s5..s7", recs[0].Name, recs[2].Name)
	}
}

func TestChromeTraceStreamed(t *testing.T) {
	tr := NewTracer(nil)
	tr.SetLimit(8)
	for i := 0; i < 12; i++ {
		sp := tr.Start(fmt.Sprintf("op%d", i))
		sp.Child("inner").End()
		sp.End()
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("streamed trace is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 8 {
		t.Errorf("trace carries %d events, want the ring's 8", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" || ev["name"] == "" {
			t.Errorf("malformed event %+v", ev)
		}
	}
}
