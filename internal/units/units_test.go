package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOrbitalPeriodStarlink550(t *testing.T) {
	// The paper: at 550 km the orbital period is 95 min 39 s (5739 s).
	got := OrbitalPeriodSec(550)
	if !almostEq(got, 5739, 5) {
		t.Fatalf("OrbitalPeriodSec(550) = %.1f s, want 5739±5 s", got)
	}
}

func TestOrbitalVelocityStarlink550(t *testing.T) {
	// The paper: 27,306 km/h = 7.585 km/s.
	got := OrbitalVelocityKmS(550)
	if !almostEq(got, 7.585, 0.01) {
		t.Fatalf("OrbitalVelocityKmS(550) = %.3f km/s, want 7.585±0.01", got)
	}
}

func TestGEOPeriodIsSiderealDay(t *testing.T) {
	got := OrbitalPeriodSec(GEOAltitudeKm)
	if !almostEq(got, EarthSiderealDaySec, 60) {
		t.Fatalf("GEO period = %.0f s, want sidereal day %.0f±60 s", got, EarthSiderealDaySec)
	}
}

func TestGEOLatencyRatio(t *testing.T) {
	// The paper: LEO at 550 km offers ~65x lower propagation latency than GEO.
	ratio := GEOAltitudeKm / 550
	if ratio < 60 || ratio > 70 {
		t.Fatalf("GEO/LEO altitude ratio = %.1f, want ~65", ratio)
	}
}

func TestPropagationDelay(t *testing.T) {
	tests := []struct {
		km   float64
		ms   float64
		name string
	}{
		{299792.458, 1000, "one light-second"},
		{550, 1.834, "550 km overhead"},
		{0, 0, "zero"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := PropagationDelayMs(tc.km); !almostEq(got, tc.ms, 0.01) {
				t.Fatalf("PropagationDelayMs(%v) = %v, want %v", tc.km, got, tc.ms)
			}
		})
	}
}

func TestRTTIsTwiceOneWay(t *testing.T) {
	f := func(km float64) bool {
		km = math.Abs(km)
		if math.IsInf(km, 0) || math.IsNaN(km) {
			return true
		}
		return almostEq(RTTMs(km), 2*PropagationDelayMs(km), 1e-9*math.Max(1, km))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapRadiansRange(t *testing.T) {
	// Map the generator's arbitrary float into a finite band rather than
	// skipping — skipping lets quick.Check pass without ever exercising
	// the function.
	f := func(seed int64) bool {
		a := float64(seed%2000000) / 100 // [-10000, 10000] rad
		w := WrapRadians(a)
		if w < 0 || w >= 2*math.Pi {
			return false
		}
		// Wrapping preserves the angle modulo 2π.
		diff := math.Mod(w-a, 2*math.Pi)
		if diff < -math.Pi {
			diff += 2 * math.Pi
		}
		if diff > math.Pi {
			diff -= 2 * math.Pi
		}
		return math.Abs(diff) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapDegreesRange(t *testing.T) {
	f := func(seed int64) bool {
		a := float64(seed%72000000) / 100 // [-360000, 360000] deg
		w := WrapDegrees(a)
		if w < 0 || w >= 360 {
			return false
		}
		diff := math.Mod(w-a, 360)
		if diff < -180 {
			diff += 360
		}
		if diff > 180 {
			diff -= 360
		}
		return math.Abs(diff) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapDegreesKnown(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{0, 0}, {360, 0}, {-90, 270}, {720.5, 0.5}, {359.9, 359.9},
	}
	for _, tc := range tests {
		if got := WrapDegrees(tc.in); !almostEq(got, tc.want, 1e-9) {
			t.Errorf("WrapDegrees(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		d := float64(seed%200000000) / 100 // [-1e6, 1e6] deg
		return almostEq(Rad2Deg(Deg2Rad(d)), d, 1e-9*math.Max(1, math.Abs(d)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tc := range tests {
		if got := Clamp(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestPeriodMonotonicInAltitude(t *testing.T) {
	f := func(a, b float64) bool {
		a = 200 + math.Mod(math.Abs(a), 2000)
		b = 200 + math.Mod(math.Abs(b), 2000)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return OrbitalPeriodSec(lo) <= OrbitalPeriodSec(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVelocityDecreasesWithAltitude(t *testing.T) {
	if OrbitalVelocityKmS(550) <= OrbitalVelocityKmS(1325) {
		t.Fatal("orbital velocity should decrease with altitude")
	}
}
