// Package units holds the physical constants and unit helpers shared by the
// orbital, geometric, and link models. All internal computation uses
// kilometres, seconds, and radians; helpers convert at the edges.
package units

import "math"

// Physical constants. Values follow the WGS-72/WGS-84 conventions commonly
// used by satellite tooling; the paper's results are insensitive to the
// sub-kilometre differences between ellipsoid models because it accounts for
// propagation delay only.
const (
	// EarthRadiusKm is the mean equatorial Earth radius in kilometres.
	EarthRadiusKm = 6378.135

	// EarthMuKm3S2 is the geocentric gravitational constant (GM) in km^3/s^2.
	EarthMuKm3S2 = 398600.4418

	// EarthSiderealDaySec is the duration of one sidereal rotation in seconds.
	EarthSiderealDaySec = 86164.0905

	// EarthRotationRadS is the Earth's rotation rate in radians per second.
	EarthRotationRadS = 2 * math.Pi / EarthSiderealDaySec

	// SpeedOfLightKmS is the vacuum speed of light in km/s. The paper's RTTs
	// are free-space propagation delays, so c in vacuum is the right constant
	// for both radio up/down links and laser inter-satellite links.
	SpeedOfLightKmS = 299792.458

	// J2 is the Earth's second zonal harmonic, used for optional nodal
	// precession modelling.
	J2 = 1.08262668e-3

	// GEOAltitudeKm is the altitude of the geostationary orbit, used for the
	// paper's "~65x lower latency than GEO" comparisons.
	GEOAltitudeKm = 35786.0
)

// Deg2Rad converts degrees to radians.
func Deg2Rad(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

// PropagationDelayMs returns the one-way propagation delay in milliseconds
// for a path of the given length in kilometres.
func PropagationDelayMs(distanceKm float64) float64 {
	return distanceKm / SpeedOfLightKmS * 1000
}

// RTTMs returns the round-trip propagation time in milliseconds for a one-way
// path of the given length in kilometres.
func RTTMs(oneWayKm float64) float64 {
	return 2 * PropagationDelayMs(oneWayKm)
}

// OrbitalPeriodSec returns the period in seconds of a circular orbit at the
// given altitude above the Earth's surface.
func OrbitalPeriodSec(altitudeKm float64) float64 {
	a := EarthRadiusKm + altitudeKm
	return 2 * math.Pi * math.Sqrt(a*a*a/EarthMuKm3S2)
}

// OrbitalVelocityKmS returns the speed in km/s of a circular orbit at the
// given altitude.
func OrbitalVelocityKmS(altitudeKm float64) float64 {
	return math.Sqrt(EarthMuKm3S2 / (EarthRadiusKm + altitudeKm))
}

// WrapRadians normalises an angle to [0, 2π).
func WrapRadians(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// WrapDegrees normalises an angle to [0, 360).
func WrapDegrees(a float64) float64 {
	a = math.Mod(a, 360)
	if a < 0 {
		a += 360
	}
	return a
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	}
	return v
}
