package inorbit

import (
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/ephem"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/meetup"
	"repro/internal/obs"
)

// Option configures a Service at construction:
//
//	svc, err := inorbit.New(inorbit.Starlink,
//	        inorbit.WithStepSec(1),
//	        inorbit.WithFaults(inorbit.FaultConfig{Seed: 7, SatMTBFSec: 6 * 3600}),
//	        inorbit.WithEphemCache(128))
//
// Options apply in order; later options win on conflict. The legacy
// Options struct also satisfies Option, so pre-redesign call sites keep
// compiling unchanged.
type Option interface {
	apply(*settings)
}

// settings is the merged result of applying every Option.
type settings struct {
	core   core.Options
	fleet  fleet.Config
	faults *faults.Config
}

// funcOption adapts a closure to the Option interface.
type funcOption func(*settings)

func (f funcOption) apply(s *settings) { f(s) }

// WithServer sets the per-satellite compute payload (default: the paper's
// HPE DL325 reference). It applies to both edge views and fleet capacity.
func WithServer(spec compute.ServerSpec) Option {
	return funcOption(func(s *settings) {
		s.core.Server = spec
		s.fleet.Server = spec
	})
}

// WithMeetup sets the meetup selection parameters (Sticky band, pool,
// lookahead; default: the paper's §5 values).
func WithMeetup(cfg meetup.Config) Option {
	return funcOption(func(s *settings) { s.core.Meetup = cfg })
}

// WithISLBandwidth sets the inter-satellite link rate in Gb/s used for
// state migration (default: the laser-terminal class rate).
func WithISLBandwidth(gbps float64) Option {
	return funcOption(func(s *settings) {
		s.core.ISLBandwidthGbps = gbps
		s.fleet.ISLBandwidthGbps = gbps
	})
}

// WithStepSec sets the fleet epoch length in simulated seconds
// (default 60). Shorter steps detect hand-off pressure sooner at
// proportionally more planner work.
func WithStepSec(sec float64) Option {
	return funcOption(func(s *settings) { s.fleet.StepSec = sec })
}

// WithFleet overrides the full fleet orchestrator configuration for
// Service.Fleet. Finer-grained options (WithStepSec, WithFaults,
// WithWorkers) applied after it still take effect.
func WithFleet(cfg FleetConfig) Option {
	return funcOption(func(s *settings) { s.fleet = fleet.Config(cfg) })
}

// WithFaults arms the deterministic chaos layer: Service.Faults builds
// injectors from this configuration and Service.Fleet wires one into the
// orchestrator automatically.
func WithFaults(cfg FaultConfig) Option {
	return funcOption(func(s *settings) {
		c := faults.Config(cfg)
		s.faults = &c
	})
}

// WithEphemCache sets how many full-constellation frames the shared
// ephemeris engine caches per tier (default 64 LRU + 64 protected grid
// keyframes; one Starlink-scale frame is ~105 KiB). Larger caches let
// repeated sweeps over the same window replay frames instead of
// re-propagating.
func WithEphemCache(frames int) Option {
	return funcOption(func(s *settings) {
		s.core.Ephem.CacheFrames = frames
		s.core.Ephem.GridFrames = frames
	})
}

// WithEphemGridSec sets the keyframe grid spacing of the ephemeris engine
// in seconds (default 60) — the instants pinned in the protected cache
// tier and the nodes interpolation brackets with.
func WithEphemGridSec(sec float64) Option {
	return funcOption(func(s *settings) { s.core.Ephem.GridStepSec = sec })
}

// WithInterpolation selects the scheme Ephemeris.Interpolated uses between
// keyframes: HermiteInterp (metre-scale error at the default grid) or
// LinearInterp (kilometre-scale). Exact propagation paths are unaffected.
func WithInterpolation(mode InterpMode) Option {
	return funcOption(func(s *settings) { s.core.Ephem.Interp = mode })
}

// WithWorkers bounds the parallelism of snapshot propagation and fleet
// planning (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return funcOption(func(s *settings) {
		s.core.Ephem.Workers = n
		s.fleet.Workers = n
	})
}

// WithRegistry routes ephem_* and fleet_* metric families to a caller
// registry instead of the process default.
func WithRegistry(reg *obs.Registry) Option {
	return funcOption(func(s *settings) {
		s.core.Ephem.Registry = reg
		s.fleet.Registry = reg
	})
}

// FleetOption configures one orchestrator built by Service.NewFleet. It
// refines the service-wide fleet settings (WithFleet, WithStepSec,
// WithWorkers, ...) for that orchestrator only:
//
//	fl, err := svc.NewFleet(
//	        inorbit.WithFleetSessions(1_000_000),
//	        inorbit.WithFleetEpoch(60),
//	        inorbit.WithFleetShards(8))
//
// FleetOptions apply in order; later options win on conflict.
type FleetOption interface {
	applyFleet(*fleet.Config)
}

// fleetFuncOption adapts a closure to the FleetOption interface.
type fleetFuncOption func(*fleet.Config)

func (f fleetFuncOption) applyFleet(c *fleet.Config) { f(c) }

// WithFleetSessions sizes the orchestrator for the intended session
// population: the session table and the planner's per-epoch scratch are
// pre-allocated for n sessions. It is a hint — the fleet grows past it
// without error — but the right hint avoids incremental growth stalls on
// million-session ingest.
func WithFleetSessions(n int) FleetOption {
	return fleetFuncOption(func(c *fleet.Config) { c.ExpectedSessions = n })
}

// WithFleetEpoch sets this orchestrator's epoch length in simulated
// seconds (default 60, or the service-wide WithStepSec value).
func WithFleetEpoch(stepSec float64) FleetOption {
	return fleetFuncOption(func(c *fleet.Config) { c.StepSec = stepSec })
}

// WithFleetLookahead sets the visibility lookahead horizon in simulated
// seconds used to rank candidates by remaining visibility (default 1200,
// the meetup Sticky horizon). Must be at least the epoch length.
func WithFleetLookahead(sec float64) FleetOption {
	return fleetFuncOption(func(c *fleet.Config) { c.LookaheadSec = sec })
}

// WithFleetCapacity sets the per-satellite compute payload for this
// orchestrator (default: the paper's HPE DL325 reference, or the
// service-wide WithServer value).
func WithFleetCapacity(spec ServerSpec) FleetOption {
	return fleetFuncOption(func(c *fleet.Config) { c.Server = spec })
}

// WithFleetShards sets how many footprint-region queues the epoch planner
// splits its work across (default: the worker count). Shard count never
// changes planner decisions — output is byte-identical for every value —
// it only bounds parallelism and per-region scratch.
func WithFleetShards(n int) FleetOption {
	return fleetFuncOption(func(c *fleet.Config) { c.PlannerShards = n })
}

// InterpMode selects the Ephemeris.Interpolated scheme.
type InterpMode = ephem.Mode

// Interpolation schemes for WithInterpolation.
const (
	// HermiteInterp is cubic Hermite over position+velocity keyframes.
	HermiteInterp = ephem.Hermite
	// LinearInterp is chordal interpolation over position keyframes.
	LinearInterp = ephem.Linear
)

// Options is the legacy all-in-one configuration struct.
//
// Deprecated: pass functional options to New instead — for example
// New(Starlink, WithServer(spec), WithISLBandwidth(2.5)). Options still
// satisfies Option, so existing New(choice, Options{...}) calls keep
// working; non-zero fields override the accumulated settings.
type Options core.Options

func (o Options) apply(s *settings) {
	if o.Server != (compute.ServerSpec{}) {
		s.core.Server = o.Server
		s.fleet.Server = o.Server
	}
	if o.Meetup != (meetup.Config{}) {
		s.core.Meetup = o.Meetup
	}
	if o.ISLBandwidthGbps != 0 {
		s.core.ISLBandwidthGbps = o.ISLBandwidthGbps
		s.fleet.ISLBandwidthGbps = o.ISLBandwidthGbps
	}
	if o.Ephem != (ephem.Config{}) {
		s.core.Ephem = o.Ephem
	}
}
