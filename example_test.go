package inorbit_test

import (
	"fmt"
	"log"

	inorbit "repro"
)

// Example shows the one-minute tour: build the Starlink service, check
// coverage and fleet size, and place a virtually-stationary server.
func Example() {
	svc, err := inorbit.New(inorbit.Starlink, inorbit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("servers:", svc.Servers())

	abuja := inorbit.LatLon{LatDeg: 9.06, LonDeg: 7.49}
	fmt.Println("abuja covered:", svc.Covered(0, abuja))

	vs, err := svc.PlaceVirtualServer(
		[]inorbit.LatLon{abuja, {LatDeg: 5.60, LonDeg: -0.19}},
		inorbit.Sticky,
		inorbit.State{SessionMB: 16, DirtyRateMBps: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy:", vs.Policy())
	// Output:
	// servers: 4409
	// abuja covered: true
	// policy: sticky
}

// ExampleNew_kuiper builds the Kuiper preset.
func ExampleNew_kuiper() {
	svc, err := inorbit.New(inorbit.Kuiper, inorbit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(svc.Constellation().Name, svc.Servers())
	// Output: Kuiper 3236
}

// ExampleNew_options configures the service with functional options: a
// 30-second fleet epoch, a deeper ephemeris cache, and seeded fault
// injection, then builds the fleet orchestrator those options describe.
func ExampleNew_options() {
	svc, err := inorbit.New(inorbit.Telesat,
		inorbit.WithStepSec(30),
		inorbit.WithEphemCache(128),
		inorbit.WithFaults(inorbit.FaultConfig{Seed: 7, SatMTBFHours: 6, SatMTTRSec: 1800}),
	)
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := svc.Fleet()
	if err != nil {
		log.Fatal(err)
	}
	if err := fleet.Start(0); err != nil {
		log.Fatal(err)
	}
	_, armed, err := svc.Faults()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("servers:", svc.Servers())
	fmt.Println("faults armed:", armed)
	// Output:
	// servers: 1671
	// faults armed: true
}

// ExampleService_Ephemeris queries the stable propagation surface: shared
// exact frames, exact fills of a caller buffer, and sub-step
// interpolation between cached keyframes.
func ExampleService_Ephemeris() {
	svc, err := inorbit.New(inorbit.Telesat)
	if err != nil {
		log.Fatal(err)
	}
	eph := svc.Ephemeris()

	frame := eph.SnapshotAt(60) // shared, immutable
	dst := make([]inorbit.Vec3, eph.Size())
	if err := eph.SnapshotInto(60, dst); err != nil { // exact, caller-owned
		log.Fatal(err)
	}
	fmt.Println("exact paths agree:", frame[0] == dst[0])

	if err := eph.Interpolated(61.5, dst); err != nil { // between keyframes
		log.Fatal(err)
	}
	drift := dst[0].Sub(frame[0]).Norm()
	fmt.Println("sub-step drift under 20 km:", drift > 0 && drift < 20)
	// Output:
	// exact paths agree: true
	// sub-step drift under 20 km: true
}

// ExampleBuildConstellation assembles a custom Walker shell.
func ExampleBuildConstellation() {
	c, err := inorbit.BuildConstellation("demo", []inorbit.Shell{{
		Name:            "demo-600",
		AltitudeKm:      600,
		InclinationDeg:  55,
		Planes:          12,
		SatsPerPlane:    20,
		MinElevationDeg: 25,
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Size())
	// Output: 240
}
