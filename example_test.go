package inorbit_test

import (
	"fmt"
	"log"

	inorbit "repro"
)

// Example shows the one-minute tour: build the Starlink service, check
// coverage and fleet size, and place a virtually-stationary server.
func Example() {
	svc, err := inorbit.New(inorbit.Starlink, inorbit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("servers:", svc.Servers())

	abuja := inorbit.LatLon{LatDeg: 9.06, LonDeg: 7.49}
	fmt.Println("abuja covered:", svc.Covered(0, abuja))

	vs, err := svc.PlaceVirtualServer(
		[]inorbit.LatLon{abuja, {LatDeg: 5.60, LonDeg: -0.19}},
		inorbit.Sticky,
		inorbit.State{SessionMB: 16, DirtyRateMBps: 2},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("policy:", vs.Policy())
	// Output:
	// servers: 4409
	// abuja covered: true
	// policy: sticky
}

// ExampleNew_kuiper builds the Kuiper preset.
func ExampleNew_kuiper() {
	svc, err := inorbit.New(inorbit.Kuiper, inorbit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(svc.Constellation().Name, svc.Servers())
	// Output: Kuiper 3236
}

// ExampleBuildConstellation assembles a custom Walker shell.
func ExampleBuildConstellation() {
	c, err := inorbit.BuildConstellation("demo", []inorbit.Shell{{
		Name:            "demo-600",
		AltitudeKm:      600,
		InclinationDeg:  55,
		Planes:          12,
		SatsPerPlane:    20,
		MinElevationDeg: 25,
	}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Size())
	// Output: 240
}
