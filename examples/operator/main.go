// Operator: the constellation operator's dashboard view of the in-orbit
// cloud. Brings together the extension models: fleet supply vs urban
// demand, the idle southern fleet, weather-limited availability per
// climate, and route stability — the quantities an operator would actually
// watch before selling "compute above the clouds".
package main

import (
	"fmt"
	"log"

	"os"
	"repro/internal/capacity"
	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/experiments"
	"repro/internal/plot"
	"repro/internal/weather"
)

func main() {
	fmt.Println("=== In-orbit cloud: operator dashboard ===")

	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Fleet balance at 5% adoption.
	rep, err := capacity.Balance(c, compute.DefaultServerSpec(), capacity.Demand{
		AdoptionFraction:      0.05,
		CoresPerThousandUsers: 1,
	}, 500, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfleet: %d satellite-servers, %.0f cores total\n",
		c.Size(), float64(c.Size())*compute.DefaultServerSpec().EffectiveCores())
	fmt.Printf("urban demand (top 500 cities, 5%% adoption): %.0f cores\n", rep.TotalDemandCores)
	fmt.Printf("servable now: %.1f%% of demand | fleet utilization %.1f%% | %d satellites idle (%.0f%%)\n",
		rep.SatisfiedFraction()*100, rep.FleetUtilization*100,
		rep.IdleSats, 100*float64(rep.IdleSats)/float64(c.Size()))
	if worst, ok := rep.WorstCity(); ok {
		fmt.Printf("tightest market: %s — %.0f%% of %.0f demanded cores served by %d sats in view\n",
			worst.Name, worst.SatisfiedFraction()*100, worst.DemandCores, worst.VisibleSats)
	}

	// 2. Weather exposure per climate zone.
	fmt.Println("\nweather exposure (Ka user links):")
	rows, err := experiments.WeatherStudy([]float64{8})
	if err != nil {
		log.Fatal(err)
	}
	var wt [][]string
	for _, r := range rows {
		wt = append(wt, []string{
			r.Climate,
			fmt.Sprintf("%.1f mm/h", r.OutageMmH),
			fmt.Sprintf("%.3f%%", r.Availability*100),
			fmt.Sprintf("%.1f h/yr", (1-r.Availability)*8760),
		})
	}
	if err := plot.Table(os.Stdout, []string{"climate", "outage rain", "availability", "downtime"}, wt); err != nil {
		log.Fatal(err)
	}

	// 3. Route stability for transit customers.
	fmt.Println("\ntransit route stability (30 min monitored):")
	churn, err := experiments.ChurnStudy(1800, 15)
	if err != nil {
		log.Fatal(err)
	}
	var ct [][]string
	for _, r := range churn {
		ct = append(ct, []string{
			r.Name,
			fmt.Sprintf("%.0f s", r.MedianPathLifeS),
			fmt.Sprintf("%.1f ms", r.MeanLatencyMs),
			fmt.Sprintf("%.1f ms", r.JitterMs),
			fmt.Sprintf("%.2fx", r.Stretch),
		})
	}
	if err := plot.Table(os.Stdout, []string{"route", "median path life", "mean one-way", "jitter", "stretch"}, ct); err != nil {
		log.Fatal(err)
	}

	// 4. The headline sales pitch, quantified.
	l := weather.Link{Band: weather.KaBand, MarginDB: 8}
	tropAvail, err := weather.ComputeAvailability(l, weather.Tropical, []float64{55})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsummary: sell %d-server coverage everywhere; plan %.1f%% weather downtime in the tropics;\n",
		c.Size(), (1-tropAvail)*100)
	fmt.Println("         43% of the fleet is idle over oceans — exactly the §3.3 opportunistic-processing capacity.")
}
