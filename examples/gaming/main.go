// Gaming: the paper's Fig 3 scenario. Three friends in West Africa want a
// meetup server for an interactive game. We compare the best terrestrial
// data center (reached over the constellation) with an in-orbit meetup
// server, then run a two-hour session under MinMax and Sticky selection to
// show the stationarity trade-off (§5).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
	"repro/internal/meetup"
	"repro/internal/stats"
)

func main() {
	fmt.Println("=== Meetup servers for a West African gaming group (paper Fig 3) ===")

	res, err := experiments.Fig3(experiments.WestAfricaScenario(),
		experiments.Fig3Config{SampleEverySec: 300, DurationSec: 3600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest terrestrial meetup: %-20s %6.1f ms worst-case RTT (%.0f km to farthest user)\n",
		res.TerrestrialDC, res.TerrestrialRTTMs, res.GeodesicKm)
	fmt.Printf("in-orbit meetup server:  %-20s %6.1f ms worst-case RTT\n", "(satellite)", res.InOrbitRTTMs)
	fmt.Printf("improvement: %.1fx lower latency in orbit (paper: 46 ms -> 16 ms, ~3x)\n", res.Improvement)

	// Session dynamics: MinMax vs Sticky over two hours.
	svc, err := inorbit.New(inorbit.Starlink, inorbit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	users := []inorbit.LatLon{
		{LatDeg: 9.06, LonDeg: 7.49},  // Abuja
		{LatDeg: 3.87, LonDeg: 11.52}, // Yaoundé
		{LatDeg: 5.60, LonDeg: -0.19}, // Accra
	}
	planner, err := svc.Meetup(users)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- two-hour session dynamics ---")
	for _, pol := range []inorbit.Policy{inorbit.MinMax, inorbit.Sticky} {
		sess, err := planner.Simulate(svc.Provider(), pol, 0, 7200, 2)
		if err != nil {
			log.Fatal(err)
		}
		med := 0.0
		if len(sess.Handoffs) > 0 {
			med = stats.NewCDF(sess.HandoffIntervals()...).Median()
		}
		fmt.Printf("%-7s %3d hand-offs, median hold %4.0f s, mean RTT %5.2f ms\n",
			pol, len(sess.Handoffs), med, sess.RTT.Mean())
	}

	// What one hand-off costs the game: live migration of session state.
	vs, err := svc.PlaceVirtualServer(users, meetup.Sticky, inorbit.State{
		SessionMB: 32, GenericMB: 2048, DirtyRateMBps: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := vs.Run(0, 3600, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvirtual server over 1 h: %d migrations, total pause %.0f ms (%.1f ms/hand-off), %.0fx below GEO latency\n",
		len(rep.Migrations), rep.TotalDowntimeSec*1000,
		rep.TotalDowntimeSec*1000/float64(max(1, len(rep.Migrations))), rep.GEOAdvantage)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
