// Quickstart: build the Starlink Phase I service and ask, for a few places
// on Earth, what in-orbit compute is reachable right now and at what
// latency — the paper's §3.1 "compute wherever you want" in five lines of
// API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	svc, err := inorbit.New(inorbit.Starlink, inorbit.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("in-orbit computing service over %s: %d satellite-servers\n\n",
		svc.Constellation().Name, svc.Servers())

	places := []struct {
		name string
		loc  inorbit.LatLon
	}{
		{"Abuja, Nigeria", inorbit.LatLon{LatDeg: 9.06, LonDeg: 7.49}},
		{"Zurich, Switzerland", inorbit.LatLon{LatDeg: 47.38, LonDeg: 8.54}},
		{"Punta Arenas, Chile", inorbit.LatLon{LatDeg: -53.16, LonDeg: -70.91}},
		{"McMurdo-ish, 77S", inorbit.LatLon{LatDeg: -77.0, LonDeg: 166.0}},
		{"Mid-Pacific buoy", inorbit.LatLon{LatDeg: 0, LonDeg: -150}},
	}
	for _, p := range places {
		view, err := svc.Edge(0, p.loc)
		if err != nil {
			log.Fatal(err)
		}
		if len(view.Reachable) == 0 {
			fmt.Printf("%-22s no satellite-server in view\n", p.name)
			continue
		}
		fmt.Printf("%-22s %3d servers in view, nearest %5.1f ms RTT, farthest %5.1f ms, %5.0f cores reachable\n",
			p.name, len(view.Reachable), view.NearestRTTMs, view.FarthestRTTMs, view.TotalCores)
	}
}
