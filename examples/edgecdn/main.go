// Edgecdn: the paper's §3.1 argument. Terrestrial CDN edges cluster in
// metro hubs, leaving 100+ ms round trips across much of Africa, South
// America, and Central Asia; an in-orbit edge is a few milliseconds from
// everywhere. We compare both models for well-served and under-served
// cities.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/cdn"
	"repro/internal/cities"
	"repro/internal/constellation"
	"repro/internal/dcs"
	"repro/internal/geo"
	"repro/internal/visibility"
)

func main() {
	fmt.Println("=== Terrestrial CDN vs in-orbit edge (paper §3.1) ===")

	// Terrestrial CDN: PoPs at the cloud regions (a generous stand-in for
	// CDN presence — real CDNs are denser in the same hubs and just as
	// absent elsewhere).
	var pops []geo.LatLon
	for _, r := range dcs.Regions() {
		pops = append(pops, r.Loc)
	}
	ter := cdn.Terrestrial{PoPs: pops}

	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		log.Fatal(err)
	}
	orb := cdn.Orbital{Observer: visibility.NewObserver(c), ProcessingMs: 0.5}

	clients := []geo.LatLon{}
	names := []string{}
	for _, city := range []string{
		"London", "New York", "Tokyo", // well-served
		"N'Djamena", "Kano", "La Paz", "Mbuji-Mayi", "Kathmandu", "Antananarivo", // under-served
	} {
		for _, cc := range cities.Real() {
			if cc.Name == city {
				clients = append(clients, cc.Loc)
				names = append(names, city)
				break
			}
		}
	}

	comps, err := cdn.Compare(ter, orb, clients, c.Snapshot(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-16s %14s %14s %10s\n", "city", "CDN RTT (ms)", "orbit RTT (ms)", "advantage")
	for i, cp := range comps {
		orbStr := "uncovered"
		advStr := "-"
		if cp.OrbitalCovered {
			orbStr = fmt.Sprintf("%.1f", cp.OrbitalMs)
			advStr = fmt.Sprintf("%.1fx", cp.Advantage())
		}
		fmt.Printf("%-16s %14.1f %14s %10s\n", names[i], cp.TerrestrialMs, orbStr, advStr)
	}

	// How much of the world's urban population lives >50 ms from the CDN?
	top := cities.TopN(1000)
	var far, total float64
	worst := []cdn.Comparison{}
	snap := c.Snapshot(0)
	for _, city := range top {
		rtt, err := ter.RTTMs(city.Loc)
		if err != nil {
			log.Fatal(err)
		}
		total += float64(city.Population)
		if rtt > 50 {
			far += float64(city.Population)
			orbMs, ok := orb.RTTMs(city.Loc, snap)
			worst = append(worst, cdn.Comparison{Client: city.Loc, TerrestrialMs: rtt, OrbitalMs: orbMs, OrbitalCovered: ok})
		}
	}
	fmt.Printf("\n%.0f%% of top-1000-city population sits >50 ms RTT from the terrestrial edge\n", 100*far/total)
	sort.Slice(worst, func(i, j int) bool { return worst[i].TerrestrialMs > worst[j].TerrestrialMs })
	if len(worst) > 0 {
		w := worst[0]
		fmt.Printf("worst case %.0f ms terrestrial; the in-orbit edge serves the same point at %.1f ms\n",
			w.TerrestrialMs, w.OrbitalMs)
	}
}
