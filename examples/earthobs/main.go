// Earthobs: the paper's §3.3 space-native data pipeline. An imaging
// satellite senses at 5 Gbps but only reaches ground stations a few percent
// of the time; we quantify how in-orbit pre-processing multiplies sensing
// time and saves downlink bandwidth, then validate the steady-state numbers
// with a store-and-forward simulation over real contact windows.
package main

import (
	"fmt"
	"log"

	"repro/internal/eo"
	"repro/internal/geo"
	"repro/internal/orbit"
)

func main() {
	fmt.Println("=== Space-native data processing (paper §3.3) ===")

	// A sun-synchronous-style imaging orbit with a realistic ground segment
	// (AWS-Ground-Station-like sites).
	el := orbit.Elements{AltitudeKm: 550, InclinationDeg: 97.6}
	grounds := []geo.LatLon{
		{LatDeg: 47.61, LonDeg: -122.33}, // Seattle
		{LatDeg: 50.11, LonDeg: 8.68},    // Frankfurt
		{LatDeg: -33.87, LonDeg: 151.21}, // Sydney
		{LatDeg: 69.65, LonDeg: 18.96},   // Tromsø (polar stations earn their keep)
		{LatDeg: -53.16, LonDeg: -70.91}, // Punta Arenas
	}
	cf, err := eo.ContactFraction(el, grounds, 10, 86400, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nground contact: %.1f%% of a day over %d stations\n", cf*100, len(grounds))

	fmt.Println("\npreprocess   sensing duty   downlink saved")
	for _, factor := range []float64{1, 2, 5, 10, 20} {
		m := eo.Mission{
			SensingRateGbps:  5,
			DownlinkRateGbps: 2,
			StorageGb:        4000,
			PreprocessFactor: factor,
			ProcessRateGbps:  8,
		}
		duty, err := m.MaxSensingDutyCycle(cf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %4.0fx        %5.1f%%          %4.0f%%\n",
			factor, duty*100, m.DownlinkSavingsFraction()*100)
	}

	// Validate with the discrete-event store-and-forward run over one
	// synthetic orbit of contact windows.
	raw := eo.Mission{SensingRateGbps: 5, DownlinkRateGbps: 2, StorageGb: 500, PreprocessFactor: 1}
	proc := raw
	proc.PreprocessFactor = 10
	proc.ProcessRateGbps = 8
	contacts := [][2]float64{{600, 1100}, {3500, 4000}, {5400, 5739}}

	fmt.Println("\nstore-and-forward over one orbit (500 Gb buffer, 3 contacts):")
	for _, m := range []struct {
		name string
		m    eo.Mission
	}{{"raw downlink", raw}, {"10x in-orbit preprocessing", proc}} {
		r, err := eo.SimulateStoreAndForward(m.m, contacts, 5739, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-27s sensed %6.0f Gb in %5.0f s, downlinked %5.0f Gb, missed %5.0f Gb\n",
			m.name, r.SensedGb, r.SensingSec, r.DownlinkedGb, r.MissedGb)
	}

	// Cooperative processing over ISLs.
	fmt.Println("\ncooperative processing of a 400 Gb job (per-sat 2 Gbps, ISL 20 Gbps):")
	for _, k := range []int{1, 2, 4, 8, 16} {
		s, err := eo.CooperativeSpeedup(400, k, 2, 20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  k=%2d satellites: %.2fx speedup\n", k, s)
	}
}
