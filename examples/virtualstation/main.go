// Virtualstation: the paper's headline abstraction in action. One logical
// server stays "stationary" above a user group for an hour while the
// physical satellites streak past at 27,000 km/h: the service plans ahead
// with Sticky selection and live-migrates session state before each
// hand-off. The log shows every hop with its migration cost.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/geo"
)

func main() {
	svc, err := inorbit.New(inorbit.Starlink, inorbit.Options{})
	if err != nil {
		log.Fatal(err)
	}

	users := []inorbit.LatLon{
		{LatDeg: -1.29, LonDeg: 36.82}, // Nairobi
		{LatDeg: 0.35, LonDeg: 32.58},  // Kampala
		{LatDeg: -6.79, LonDeg: 39.21}, // Dar es Salaam
	}
	fmt.Println("=== Virtual stationarity over East Africa (paper §5) ===")
	fmt.Printf("group: Nairobi / Kampala / Dar es Salaam — centroid %v\n\n", geo.Centroid(users))

	vs, err := svc.PlaceVirtualServer(users, inorbit.Sticky, inorbit.State{
		SessionMB:     48,   // player + match state, on the critical path
		GenericMB:     4096, // the game world, replicated ahead
		DirtyRateMBps: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := vs.Run(0, 3600, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hand-off log:")
	for i, h := range rep.Handoffs {
		m := rep.Migrations[i]
		fmt.Printf("  t=%5.0fs  sat %4d -> %4d  held %4.0fs  path %5.1f ms  live migration: %5.0f ms total, %4.1f ms pause, %d rounds\n",
			h.TimeSec, h.From, h.To, h.HeldSec, h.TransferMs,
			m.TotalSec*1000, m.DowntimeSec*1000, m.Rounds)
	}
	fmt.Printf("\nsession: mean RTT %.2f ms over %d samples; %d hand-offs in an hour\n",
		rep.RTT.Mean(), rep.RTT.N(), len(rep.Handoffs))
	fmt.Printf("total migration pause: %.0f ms (%.4f%% of the session)\n",
		rep.TotalDowntimeSec*1000, 100*rep.TotalDowntimeSec/3600)
	fmt.Printf("the same stationarity from GEO would cost %.0fx the latency\n", rep.GEOAdvantage)
}
