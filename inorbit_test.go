package inorbit

import (
	"math"
	"testing"
)

// The facade tests exercise the public API the README documents, over the
// real Starlink preset (construction is fast; queries are cheap).

func service(t testing.TB) *Service {
	t.Helper()
	svc, err := New(Starlink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestQuickstartFlow(t *testing.T) {
	svc := service(t)
	if svc.Servers() != 4409 {
		t.Fatalf("Servers = %d, want 4409", svc.Servers())
	}
	view, err := svc.Edge(0, LatLon{LatDeg: 9.06, LonDeg: 7.49})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline numbers: nearest ≈4 ms, farthest ≤16 ms, tens
	// of servers in view.
	if view.NearestRTTMs < 3.6 || view.NearestRTTMs > 12 {
		t.Fatalf("nearest RTT = %v", view.NearestRTTMs)
	}
	if view.FarthestRTTMs > 16.5 {
		t.Fatalf("farthest RTT = %v", view.FarthestRTTMs)
	}
	if len(view.Reachable) < 20 {
		t.Fatalf("only %d servers in view", len(view.Reachable))
	}
}

func TestCustomConstellation(t *testing.T) {
	c, err := BuildConstellation("mini", []Shell{
		{Name: "m", AltitudeKm: 600, InclinationDeg: 55, Planes: 10, SatsPerPlane: 10, MinElevationDeg: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewCustom(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Servers() != 100 {
		t.Fatalf("Servers = %d", svc.Servers())
	}
}

func TestVirtualServerFacade(t *testing.T) {
	svc := service(t)
	users := []LatLon{{LatDeg: 9.06, LonDeg: 7.49}, {LatDeg: 8.5, LonDeg: 9.0}}
	vs, err := svc.PlaceVirtualServer(users, Sticky, State{SessionMB: 16, DirtyRateMBps: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := vs.Run(0, 900, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RTT.N() == 0 {
		t.Fatal("no latency samples")
	}
	if rep.RTT.Mean() <= 0 || math.IsNaN(rep.RTT.Mean()) {
		t.Fatalf("mean RTT = %v", rep.RTT.Mean())
	}
	if len(rep.Migrations) != len(rep.Handoffs) {
		t.Fatal("migrations misaligned with hand-offs")
	}
}

func TestPolicyConstantsDistinct(t *testing.T) {
	if MinMax == Sticky {
		t.Fatal("policy constants collide")
	}
	if MinMax.String() != "minmax" || Sticky.String() != "sticky" {
		t.Fatal("policy names wrong")
	}
}

func TestFleetFacade(t *testing.T) {
	svc := service(t)
	f, err := NewFleet(svc, FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	groups := [][]LatLon{
		{{LatDeg: 9.06, LonDeg: 7.49}, {LatDeg: 8.5, LonDeg: 9.0}},
		{{LatDeg: 51.5, LonDeg: -0.1}, {LatDeg: 48.9, LonDeg: 2.35}},
	}
	for i, users := range groups {
		s, err := NewFleetSession(uint64(i+1), users)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Start(0); err != nil {
		t.Fatal(err)
	}
	rep, err := f.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 2 || rep.Assigned != 2 {
		t.Fatalf("report %+v, want both sessions assigned", rep)
	}
	for id := uint64(1); id <= 2; id++ {
		s, ok := f.Table().Get(id)
		if !ok || s.Sat < 0 || s.RTTMs <= 0 {
			t.Fatalf("session %d not placed: %+v", id, s)
		}
	}
}

// TestFleetOptionsEquivalence pins the deprecated package-level
// NewFleet(svc, cfg) shim to the options path: the same tuning expressed
// either way must run the same workload to identical epoch reports and
// final assignments.
func TestFleetOptionsEquivalence(t *testing.T) {
	groups := [][]LatLon{
		{{LatDeg: 9.06, LonDeg: 7.49}, {LatDeg: 8.5, LonDeg: 9.0}},
		{{LatDeg: 51.5, LonDeg: -0.1}, {LatDeg: 48.9, LonDeg: 2.35}},
		{{LatDeg: -23.5, LonDeg: -46.6}, {LatDeg: -22.9, LonDeg: -43.2}},
	}
	run := func(f *Fleet) ([]EpochReportLike, map[uint64]int) {
		t.Helper()
		for i, users := range groups {
			s, err := NewFleetSession(uint64(i+1), users)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Submit(s); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Start(0); err != nil {
			t.Fatal(err)
		}
		var reps []EpochReportLike
		for i := 0; i < 5; i++ {
			rep, err := f.Step()
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, EpochReportLike{rep.Sessions, rep.Assigned, rep.Placements, rep.Handoffs, rep.Rejections})
		}
		sats := map[uint64]int{}
		for id := uint64(1); id <= uint64(len(groups)); id++ {
			s, ok := f.Table().Get(id)
			if !ok {
				t.Fatalf("session %d missing", id)
			}
			sats[id] = s.Sat
		}
		return reps, sats
	}

	svc := service(t)
	oldF, err := NewFleet(svc, FleetConfig{StepSec: 30, LookaheadSec: 900, PlannerShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	newF, err := svc.NewFleet(WithFleetEpoch(30), WithFleetLookahead(900), WithFleetShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := newF.PlannerShards(); got != 3 {
		t.Fatalf("PlannerShards = %d, want 3", got)
	}
	oldReps, oldSats := run(oldF)
	newReps, newSats := run(newF)
	for i := range oldReps {
		if oldReps[i] != newReps[i] {
			t.Fatalf("epoch %d diverged: old %+v new %+v", i, oldReps[i], newReps[i])
		}
	}
	for id, sat := range oldSats {
		if newSats[id] != sat {
			t.Fatalf("session %d: old sat %d, new sat %d", id, sat, newSats[id])
		}
	}

	st := newF.Stats()
	if st.Sessions != len(groups) || st.Epochs != 5 {
		t.Fatalf("Stats = %+v, want %d sessions over 5 epochs", st, len(groups))
	}
	if st.PlannerShards != 3 || len(st.ShardWork) != 3 {
		t.Fatalf("Stats shards = %d (work %v), want 3", st.PlannerShards, st.ShardWork)
	}
}

// EpochReportLike is the comparable core of an epoch report.
type EpochReportLike struct {
	Sessions, Assigned, Placements, Handoffs, Rejections int
}

// smallService builds a service over a 48-satellite custom shell so option
// tests don't pay Starlink-scale construction per case.
func smallService(t testing.TB, opts ...Option) *Service {
	t.Helper()
	c, err := BuildConstellation("opt-test", []Shell{{
		Name: "s", AltitudeKm: 600, InclinationDeg: 55,
		Planes: 6, SatsPerPlane: 8, MinElevationDeg: 25,
	}})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewCustom(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestOptionsFacade(t *testing.T) {
	svc := smallService(t,
		WithStepSec(30),
		WithEphemCache(16),
		WithWorkers(2),
		WithFaults(FaultConfig{Seed: 3, SatMTBFHours: 4, SatMTTRSec: 600}),
	)

	// Faults() reflects WithFaults and builds a fresh injector per call.
	inj, ok, err := svc.Faults()
	if err != nil || !ok || inj == nil {
		t.Fatalf("Faults() = %v, %v, %v; want armed", inj, ok, err)
	}
	inj2, _, _ := svc.Faults()
	if inj == inj2 {
		t.Fatal("Faults() must build independent injectors")
	}

	// Fleet() honours the construction options and shares the service's
	// ephemeris engine; each call is an independent orchestrator.
	fl, err := svc.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if any(fl.Ephemeris()) != svc.Ephemeris() {
		t.Fatal("Fleet must share the service-wide ephemeris engine")
	}
	fl2, err := svc.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if fl == fl2 {
		t.Fatal("Fleet() must build independent orchestrators")
	}
	if err := fl.Start(0); err != nil {
		t.Fatal(err)
	}
}

func TestFaultsWithoutOption(t *testing.T) {
	svc := smallService(t)
	inj, ok, err := svc.Faults()
	if inj != nil || ok || err != nil {
		t.Fatalf("Faults() = %v, %v, %v; want unarmed", inj, ok, err)
	}
}

func TestOptionOrderAndLegacyMerge(t *testing.T) {
	// A negative ISL rate is rejected at construction whichever style set it.
	if _, err := New(Telesat, Options{ISLBandwidthGbps: -1}); err == nil {
		t.Fatal("legacy Options must still reach core validation")
	}
	if _, err := New(Telesat, WithISLBandwidth(-1)); err == nil {
		t.Fatal("WithISLBandwidth must reach core validation")
	}
	// Later options win: a valid legacy struct repairs the earlier option...
	if _, err := New(Telesat, WithISLBandwidth(-1), Options{ISLBandwidthGbps: 2.5}); err != nil {
		t.Fatalf("later Options should override earlier option: %v", err)
	}
	// ...but a zero-valued legacy struct merges nothing and must not reset
	// settings accumulated before it.
	if _, err := New(Telesat, WithISLBandwidth(-1), Options{}); err == nil {
		t.Fatal("zero legacy Options must not clobber earlier options")
	}
}

func TestDeprecatedConstructorsStillWork(t *testing.T) {
	svc := smallService(t)
	fl, err := NewFleet(svc, FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if any(fl.Ephemeris()) != svc.Ephemeris() {
		t.Fatal("NewFleet must share the service-wide ephemeris engine")
	}
	inj, err := NewFaultInjector(svc, FaultConfig{Seed: 1, SatMTBFHours: 4, SatMTTRSec: 600})
	if err != nil || inj == nil {
		t.Fatalf("NewFaultInjector: %v, %v", inj, err)
	}
}

func TestEphemerisFacadeMatchesPropagator(t *testing.T) {
	svc := smallService(t)
	eph := svc.Ephemeris()
	c := svc.Constellation()
	if eph.Size() != c.Size() {
		t.Fatalf("Size() = %d, want %d", eph.Size(), c.Size())
	}
	for _, tSec := range []float64{0, 17.25, 60, 3600} {
		snap := eph.SnapshotAt(tSec)
		for i, s := range c.Satellites {
			if want := s.Prop.ECEFAt(tSec); snap[i] != want {
				t.Fatalf("t=%v sat %d: %v, want %v", tSec, i, snap[i], want)
			}
		}
	}
	if err := eph.SnapshotInto(0, make([]Vec3, 3)); err == nil {
		t.Fatal("SnapshotInto must reject a wrong-length dst")
	}
}
