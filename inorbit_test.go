package inorbit

import (
	"math"
	"testing"
)

// The facade tests exercise the public API the README documents, over the
// real Starlink preset (construction is fast; queries are cheap).

func service(t testing.TB) *Service {
	t.Helper()
	svc, err := New(Starlink, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestQuickstartFlow(t *testing.T) {
	svc := service(t)
	if svc.Servers() != 4409 {
		t.Fatalf("Servers = %d, want 4409", svc.Servers())
	}
	view, err := svc.Edge(0, LatLon{LatDeg: 9.06, LonDeg: 7.49})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline numbers: nearest ≈4 ms, farthest ≤16 ms, tens
	// of servers in view.
	if view.NearestRTTMs < 3.6 || view.NearestRTTMs > 12 {
		t.Fatalf("nearest RTT = %v", view.NearestRTTMs)
	}
	if view.FarthestRTTMs > 16.5 {
		t.Fatalf("farthest RTT = %v", view.FarthestRTTMs)
	}
	if len(view.Reachable) < 20 {
		t.Fatalf("only %d servers in view", len(view.Reachable))
	}
}

func TestCustomConstellation(t *testing.T) {
	c, err := BuildConstellation("mini", []Shell{
		{Name: "m", AltitudeKm: 600, InclinationDeg: 55, Planes: 10, SatsPerPlane: 10, MinElevationDeg: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewCustom(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if svc.Servers() != 100 {
		t.Fatalf("Servers = %d", svc.Servers())
	}
}

func TestVirtualServerFacade(t *testing.T) {
	svc := service(t)
	users := []LatLon{{LatDeg: 9.06, LonDeg: 7.49}, {LatDeg: 8.5, LonDeg: 9.0}}
	vs, err := svc.PlaceVirtualServer(users, Sticky, State{SessionMB: 16, DirtyRateMBps: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := vs.Run(0, 900, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RTT.N() == 0 {
		t.Fatal("no latency samples")
	}
	if rep.RTT.Mean() <= 0 || math.IsNaN(rep.RTT.Mean()) {
		t.Fatalf("mean RTT = %v", rep.RTT.Mean())
	}
	if len(rep.Migrations) != len(rep.Handoffs) {
		t.Fatal("migrations misaligned with hand-offs")
	}
}

func TestPolicyConstantsDistinct(t *testing.T) {
	if MinMax == Sticky {
		t.Fatal("policy constants collide")
	}
	if MinMax.String() != "minmax" || Sticky.String() != "sticky" {
		t.Fatal("policy names wrong")
	}
}

func TestFleetFacade(t *testing.T) {
	svc := service(t)
	f, err := NewFleet(svc, FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	groups := [][]LatLon{
		{{LatDeg: 9.06, LonDeg: 7.49}, {LatDeg: 8.5, LonDeg: 9.0}},
		{{LatDeg: 51.5, LonDeg: -0.1}, {LatDeg: 48.9, LonDeg: 2.35}},
	}
	for i, users := range groups {
		s, err := NewFleetSession(uint64(i+1), users)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Submit(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Start(0); err != nil {
		t.Fatal(err)
	}
	rep, err := f.Step()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sessions != 2 || rep.Assigned != 2 {
		t.Fatalf("report %+v, want both sessions assigned", rep)
	}
	for id := uint64(1); id <= 2; id++ {
		s, ok := f.Table().Get(id)
		if !ok || s.Sat < 0 || s.RTTMs <= 0 {
			t.Fatalf("session %d not placed: %+v", id, s)
		}
	}
}
