// Package inorbit is the public facade of the in-orbit computing library —
// a reproduction of "In-orbit Computing: An Outlandish thought Experiment?"
// (HotNets 2020). It re-exports the stable API surface:
//
//	svc, _ := inorbit.New(inorbit.Starlink, inorbit.Options{})
//	view, _ := svc.Edge(0, inorbit.LatLon{LatDeg: 9.06, LonDeg: 7.49})
//	fmt.Printf("nearest satellite-server: %.1f ms RTT\n", view.NearestRTTMs)
//
// The deeper machinery (orbital mechanics, visibility, ISL routing, meetup
// policies, migration, feasibility) lives in the internal packages; this
// package exposes the compositions a downstream user needs.
package inorbit

import (
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/meetup"
	"repro/internal/migrate"
)

// LatLon is a geographic position (degrees north / east).
type LatLon = geo.LatLon

// Options configures a Service.
type Options = core.Options

// Service is the in-orbit computing service.
type Service = core.Service

// EdgeView answers "what compute can I reach from here, now".
type EdgeView = core.EdgeView

// VirtualServer is the virtually-stationary meetup server abstraction.
type VirtualServer = core.VirtualServer

// RunReport is a virtual server session outcome with migration costs.
type RunReport = core.RunReport

// State describes migratable application state.
type State = migrate.State

// Policy selects the meetup-server selection strategy.
type Policy = meetup.Policy

// Selection policies.
const (
	// MinMax re-picks the latency-optimal satellite at each instant.
	MinMax = meetup.MinMax
	// Sticky prioritises stationarity (the paper's §5 heuristic).
	Sticky = meetup.Sticky
)

// Preset constellations.
const (
	// Starlink is SpaceX's Phase I filing: 4,409 satellites in 5 shells.
	Starlink = core.Starlink
	// Kuiper is Amazon's filing: 3,236 satellites in 3 shells.
	Kuiper = core.Kuiper
	// Telesat is Telesat's Lightspeed filing: 1,671 satellites.
	Telesat = core.Telesat
)

// New builds the service over a preset constellation.
func New(choice core.ConstellationChoice, opts Options) (*Service, error) {
	return core.NewService(choice, opts)
}

// NewCustom builds the service over a caller-assembled constellation
// (see Shell and BuildConstellation).
func NewCustom(c *constellation.Constellation, opts Options) (*Service, error) {
	return core.NewServiceFor(c, opts)
}

// Shell is one Walker-delta constellation shell.
type Shell = constellation.Shell

// BuildConstellation assembles a custom constellation from shells.
func BuildConstellation(name string, shells []Shell) (*constellation.Constellation, error) {
	return constellation.Build(name, shells, constellation.Config{})
}

// Fleet is the fleet-scale session orchestrator: the epoch-batched control
// plane that places and migrates many concurrent sessions across the whole
// constellation under per-satellite capacity (see internal/fleet).
type Fleet = fleet.Orchestrator

// FleetConfig tunes the fleet orchestrator; the zero value uses the
// paper-derived defaults.
type FleetConfig = fleet.Config

// FleetSession is one session (a user group with resource demand) managed
// by a Fleet.
type FleetSession = fleet.Session

// NewFleet builds a fleet orchestrator over the service's constellation,
// sharing its ISL grid.
func NewFleet(svc *Service, cfg FleetConfig) (*Fleet, error) {
	return fleet.New(svc.Constellation(), svc.Grid(), cfg)
}

// NewFleetSession builds a session for a user group with default demand;
// adjust its exported fields before submitting.
func NewFleetSession(id uint64, users []LatLon) (*FleetSession, error) {
	return fleet.NewSession(id, users)
}

// FaultInjector is the deterministic chaos layer: seeded satellite hard
// failures, ISL degradation windows, and migration transfer failures (see
// internal/faults). Pass one via FleetConfig.Faults to exercise graceful
// degradation.
type FaultInjector = faults.Injector

// FaultConfig parameterises a FaultInjector.
type FaultConfig = faults.Config

// NewFaultInjector builds an injector for the service's constellation.
func NewFaultInjector(svc *Service, cfg FaultConfig) (*FaultInjector, error) {
	return faults.New(svc.Constellation().Size(), cfg)
}
