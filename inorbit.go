// Package inorbit is the public facade of the in-orbit computing library —
// a reproduction of "In-orbit Computing: An Outlandish thought Experiment?"
// (HotNets 2020). Construction uses functional options:
//
//	svc, _ := inorbit.New(inorbit.Starlink,
//	        inorbit.WithStepSec(30),
//	        inorbit.WithEphemCache(128))
//	view, _ := svc.Edge(0, inorbit.LatLon{LatDeg: 9.06, LonDeg: 7.49})
//	fmt.Printf("nearest satellite-server: %.1f ms RTT\n", view.NearestRTTMs)
//
// Every snapshot consumer in a service — edge views, meetup planners,
// virtual servers, the fleet orchestrator — shares one Ephemeris: the
// parallel, cached propagation engine exported here as the stable
// propagation surface.
//
// The deeper machinery (orbital mechanics, visibility, ISL routing, meetup
// policies, migration, feasibility) lives in the internal packages; this
// package exposes the compositions a downstream user needs.
package inorbit

import (
	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/core"
	"repro/internal/ephem"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/meetup"
	"repro/internal/migrate"
)

// LatLon is a geographic position (degrees north / east).
type LatLon = geo.LatLon

// Vec3 is a 3-vector in km (ECEF unless noted) — the element type of
// Ephemeris frames.
type Vec3 = geo.Vec3

// EdgeView answers "what compute can I reach from here, now".
type EdgeView = core.EdgeView

// VirtualServer is the virtually-stationary meetup server abstraction.
type VirtualServer = core.VirtualServer

// RunReport is a virtual server session outcome with migration costs.
type RunReport = core.RunReport

// State describes migratable application state.
type State = migrate.State

// Policy selects the meetup-server selection strategy.
type Policy = meetup.Policy

// Selection policies.
const (
	// MinMax re-picks the latency-optimal satellite at each instant.
	MinMax = meetup.MinMax
	// Sticky prioritises stationarity (the paper's §5 heuristic).
	Sticky = meetup.Sticky
)

// Preset constellations.
const (
	// Starlink is SpaceX's Phase I filing: 4,409 satellites in 5 shells.
	Starlink = core.Starlink
	// Kuiper is Amazon's filing: 3,236 satellites in 3 shells.
	Kuiper = core.Kuiper
	// Telesat is Telesat's Lightspeed filing: 1,671 satellites.
	Telesat = core.Telesat
)

// Ephemeris is the stable propagation surface: where every satellite is at
// time t. Frames from SnapshotAt are shared and immutable; SnapshotInto
// fills a caller buffer with exact positions; Interpolated trades a
// bounded position error (see WithInterpolation) for cheaper sub-step
// queries. The service-wide implementation parallelises propagation over
// GOMAXPROCS workers and caches keyframes so concurrent consumers reuse
// each other's work.
type Ephemeris interface {
	// Size returns the number of satellites per frame.
	Size() int
	// SnapshotAt returns the shared immutable ECEF frame at tSec.
	SnapshotAt(tSec float64) []geo.Vec3
	// SnapshotInto fills dst (length Size()) with exact positions at tSec.
	SnapshotInto(tSec float64, dst []geo.Vec3) error
	// Interpolated fills dst (length Size()) with positions interpolated
	// between cached keyframes bracketing tSec.
	Interpolated(tSec float64, dst []geo.Vec3) error
}

// Service is the in-orbit computing service. It embeds the core service —
// Edge, Covered, Meetup, PlaceVirtualServer, Feasibility and the accessors
// are available directly — and adds the construction-time wiring for the
// fleet orchestrator and fault injection.
type Service struct {
	*core.Service
	set settings
}

// New builds the service over a preset constellation. Pass functional
// options (WithStepSec, WithFaults, WithEphemCache, ...) to configure it;
// the legacy Options struct is also accepted.
func New(choice core.ConstellationChoice, opts ...Option) (*Service, error) {
	set := collect(opts)
	svc, err := core.NewService(choice, set.core)
	if err != nil {
		return nil, err
	}
	return &Service{Service: svc, set: set}, nil
}

// NewCustom builds the service over a caller-assembled constellation
// (see Shell and BuildConstellation).
func NewCustom(c *constellation.Constellation, opts ...Option) (*Service, error) {
	set := collect(opts)
	svc, err := core.NewServiceFor(c, set.core)
	if err != nil {
		return nil, err
	}
	return &Service{Service: svc, set: set}, nil
}

func collect(opts []Option) settings {
	var set settings
	for _, o := range opts {
		if o != nil {
			o.apply(&set)
		}
	}
	return set
}

// Ephemeris returns the service-wide propagation engine.
func (s *Service) Ephemeris() Ephemeris { return s.Service.Ephemeris() }

// Fleet builds a fleet orchestrator from the service's construction
// options (WithStepSec, WithFleet, WithWorkers, ...), sharing the
// service's ISL grid and ephemeris engine. WithFaults arms it with a
// fresh injector. Each call returns an independent orchestrator.
func (s *Service) Fleet() (*Fleet, error) { return s.NewFleet() }

// NewFleet builds a fleet orchestrator from the service's construction
// options refined by per-orchestrator FleetOptions (WithFleetSessions,
// WithFleetEpoch, WithFleetCapacity, WithFleetShards, ...). The
// orchestrator shares the service's ISL grid and ephemeris engine;
// WithFaults arms it with a fresh injector. Each call returns an
// independent orchestrator.
func (s *Service) NewFleet(opts ...FleetOption) (*Fleet, error) {
	cfg := s.set.fleet
	for _, o := range opts {
		if o != nil {
			o.applyFleet(&cfg)
		}
	}
	cfg.Ephem = s.Service.Ephemeris()
	if s.set.faults != nil {
		inj, err := faults.New(s.Servers(), *s.set.faults)
		if err != nil {
			return nil, err
		}
		cfg.Faults = inj
	}
	return fleet.New(s.Constellation(), s.Grid(), cfg)
}

// Faults builds a fault injector from the WithFaults configuration, or
// reports ok=false when the service was built without one. Injectors are
// single-consumer: build one per orchestrator or experiment.
func (s *Service) Faults() (inj *FaultInjector, ok bool, err error) {
	if s.set.faults == nil {
		return nil, false, nil
	}
	inj, err = faults.New(s.Servers(), *s.set.faults)
	if err != nil {
		return nil, false, err
	}
	return inj, true, nil
}

// Shell is one Walker-delta constellation shell.
type Shell = constellation.Shell

// BuildConstellation assembles a custom constellation from shells.
func BuildConstellation(name string, shells []Shell) (*constellation.Constellation, error) {
	return constellation.Build(name, shells, constellation.Config{})
}

// Fleet is the fleet-scale session orchestrator: the epoch-batched control
// plane that places and migrates many concurrent sessions across the whole
// constellation under per-satellite capacity (see internal/fleet).
type Fleet = fleet.Orchestrator

// FleetConfig tunes the fleet orchestrator; the zero value uses the
// paper-derived defaults.
type FleetConfig = fleet.Config

// FleetSession is one session (a user group with resource demand) managed
// by a Fleet.
type FleetSession = fleet.Session

// FleetStats is the stable fleet snapshot returned by Fleet.Stats:
// population, decision and fault counters, utilisation and latency
// distributions, and the planner's shard-utilization view.
type FleetStats = fleet.Stats

// ServerSpec is the per-satellite compute payload, for WithServer and
// WithFleetCapacity.
type ServerSpec = compute.ServerSpec

// NewFleet builds a fleet orchestrator over the service's constellation,
// sharing its ISL grid and ephemeris engine.
//
// Deprecated: call Service.NewFleet with per-orchestrator FleetOptions
// (WithFleetSessions, WithFleetEpoch, WithFleetCapacity, WithFleetShards)
// instead; this constructor ignores the service's construction options.
func NewFleet(svc *Service, cfg FleetConfig) (*Fleet, error) {
	cfg.Ephem = svc.Service.Ephemeris()
	return fleet.New(svc.Constellation(), svc.Grid(), cfg)
}

// NewFleetSession builds a session for a user group with default demand;
// adjust its exported fields before submitting.
func NewFleetSession(id uint64, users []LatLon) (*FleetSession, error) {
	return fleet.NewSession(id, users)
}

// FaultInjector is the deterministic chaos layer: seeded satellite hard
// failures, ISL degradation windows, and migration transfer failures (see
// internal/faults). Arm a service with WithFaults to have Service.Fleet
// wire one in automatically.
type FaultInjector = faults.Injector

// FaultConfig parameterises a FaultInjector.
type FaultConfig = faults.Config

// NewFaultInjector builds an injector for the service's constellation.
//
// Deprecated: build the service with WithFaults and use Service.Faults
// (or Service.Fleet, which arms the orchestrator itself).
func NewFaultInjector(svc *Service, cfg FaultConfig) (*FaultInjector, error) {
	return faults.New(svc.Constellation().Size(), cfg)
}

// Interp compile-time check: the engine is the facade's Ephemeris.
var _ Ephemeris = (*ephem.Engine)(nil)
