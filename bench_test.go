package inorbit

// The benchmark harness: one testing.B target per table and figure of the
// paper's evaluation, plus the ablations DESIGN.md calls out. Each bench
// runs a reduced-scale version of the corresponding experiment (the
// paper-scale run lives in cmd/figures) and reports the headline metric via
// b.ReportMetric so `go test -bench` output doubles as a results table.

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/constellation"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/geo"
	"repro/internal/meetup"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/visibility"
)

// fastSweep keeps Fig 1/2 benches to a few hundred ms per iteration.
func fastSweep() experiments.LatitudeSweepConfig {
	return experiments.LatitudeSweepConfig{
		LatStepDeg:     5,
		SampleEverySec: 600,
		DurationSec:    3600,
	}
}

func BenchmarkFig1RTTvsLatitude(b *testing.B) {
	var worstNear, worstFar float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig1(fastSweep())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Constellation != "Starlink Phase I" {
				continue
			}
			for _, row := range r.Rows {
				if !row.Covered {
					continue
				}
				if row.MinRTTMs > worstNear {
					worstNear = row.MinRTTMs
				}
				if row.MaxRTTMs > worstFar {
					worstFar = row.MaxRTTMs
				}
			}
		}
	}
	b.ReportMetric(worstNear, "worst-nearest-rtt-ms")
	b.ReportMetric(worstFar, "worst-farthest-rtt-ms")
}

func BenchmarkFig2ReachableCount(b *testing.B) {
	var meanAt30 float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig2(fastSweep())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Constellation != "Starlink Phase I" {
				continue
			}
			for _, row := range r.Rows {
				if row.LatDeg == 30 {
					meanAt30 = row.MeanCount
				}
			}
		}
	}
	b.ReportMetric(meanAt30, "mean-reachable-at-30deg")
}

func BenchmarkFig3MeetupServer(b *testing.B) {
	cfg := experiments.Fig3Config{SampleEverySec: 600, DurationSec: 3600}
	var improvement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(experiments.WestAfricaScenario(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		improvement = res.Improvement
	}
	b.ReportMetric(improvement, "in-orbit-improvement-x")
}

func BenchmarkFig3TriContinent(b *testing.B) {
	cfg := experiments.Fig3Config{SampleEverySec: 900, DurationSec: 3600}
	var inOrbit float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(experiments.TriContinentScenario(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		inOrbit = res.InOrbitRTTMs
	}
	b.ReportMetric(inOrbit, "in-orbit-rtt-ms")
}

func BenchmarkFig4InvisibleSats(b *testing.B) {
	var starlinkFrac float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig4(experiments.Fig4Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Constellation == "Starlink Phase I" {
				starlinkFrac = float64(r.Invisible[len(r.Invisible)-1]) / float64(r.Total)
			}
		}
	}
	b.ReportMetric(starlinkFrac*100, "starlink-invisible-pct")
}

func BenchmarkFig5InvisibleMap(b *testing.B) {
	var southern float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Fig5(experiments.ConstellationSet{Starlink: true}, 1000, 0)
		if err != nil {
			b.Fatal(err)
		}
		south, total := 0, 0
		for _, s := range results[0].InvisibleSats {
			total++
			if s.LatDeg < 0 {
				south++
			}
		}
		if total > 0 {
			southern = 100 * float64(south) / float64(total)
		}
	}
	b.ReportMetric(southern, "southern-invisible-pct")
}

// fig67Bench runs a reduced Fig 6/7 study (fewer, shorter sessions).
func fig67Bench() experiments.Fig67Config {
	return experiments.Fig67Config{Groups: 4, DurationSec: 1800, StepSec: 5}
}

func BenchmarkFig6HandoffCDF(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig67(fig67Bench())
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.MedianRatio()
	}
	b.ReportMetric(ratio, "sticky-over-minmax-median-hold")
}

func BenchmarkFig7StateTransferCDF(b *testing.B) {
	var stickyMedian float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig67(fig67Bench())
		if err != nil {
			b.Fatal(err)
		}
		if res.TransfersSticky.N() > 0 {
			stickyMedian = res.TransfersSticky.Median()
		}
	}
	b.ReportMetric(stickyMedian, "sticky-transfer-median-ms")
}

func BenchmarkFeasibilityTable(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, rep, err := experiments.FeasibilityTable()
		if err != nil {
			b.Fatal(err)
		}
		ratio = rep.CostRatio
	}
	b.ReportMetric(ratio, "orbit-over-dc-cost-x")
}

func BenchmarkEOPreprocessing(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EOSweep(0.08, nil)
		if err != nil {
			b.Fatal(err)
		}
		gain = rows[3].SensingDuty / rows[0].SensingDuty // 10x factor vs raw
	}
	b.ReportMetric(gain, "sensing-gain-at-10x")
}

func BenchmarkAblationStickyBand(b *testing.B) {
	base := experiments.Fig67Config{Groups: 3, DurationSec: 1200, StepSec: 5}
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StickyAblation([]float64{0.05, 0.5}, []int{5}, base)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 2 && rows[0].MedianHoldSec > 0 {
			spread = rows[1].MedianHoldSec / rows[0].MedianHoldSec
		}
	}
	b.ReportMetric(spread, "hold-gain-50pct-over-5pct-band")
}

func BenchmarkAblationStickyPool(b *testing.B) {
	base := experiments.Fig67Config{Groups: 3, DurationSec: 1200, StepSec: 5}
	var handoffsDelta float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StickyAblation([]float64{0.10}, []int{1, 10}, base)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 2 {
			handoffsDelta = float64(rows[1].Handoffs - rows[0].Handoffs)
		}
	}
	b.ReportMetric(handoffsDelta, "handoff-delta-pool10-vs-1")
}

func BenchmarkAblationISLvsLoS(b *testing.B) {
	cfg := experiments.Fig67Config{Groups: 3, DurationSec: 1200, StepSec: 5}
	var inflation float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.TransferAblation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		inflation = res.MeanInflation
	}
	b.ReportMetric(inflation, "isl-over-los-inflation-x")
}

func BenchmarkAblationElevationMask(b *testing.B) {
	var reachable15over45 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.MaskAblation([]float64{15, 45}, 10, 3)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 2 && rows[1].MeanReachable > 0 {
			reachable15over45 = rows[0].MeanReachable / rows[1].MeanReachable
		}
	}
	b.ReportMetric(reachable15over45, "reachable-15deg-over-45deg")
}

// Micro-benchmarks for the hot paths underneath every experiment.

func BenchmarkServiceEdgeQuery(b *testing.B) {
	svc, err := New(Starlink, Options{})
	if err != nil {
		b.Fatal(err)
	}
	loc := LatLon{LatDeg: 9.06, LonDeg: 7.49}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Edge(float64(i%7200), loc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeetupMinMaxSelect(b *testing.B) {
	svc, err := New(Starlink, Options{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := svc.Meetup([]LatLon{
		{LatDeg: 9.06, LonDeg: 7.49},
		{LatDeg: 3.87, LonDeg: 11.52},
		{LatDeg: 5.60, LonDeg: -0.19},
	})
	if err != nil {
		b.Fatal(err)
	}
	snap := svc.Provider().At(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SelectMinMax(snap); err != nil && err != meetup.ErrNoCandidate {
			b.Fatal(err)
		}
	}
}

func BenchmarkVirtualServerHour(b *testing.B) {
	svc, err := New(Starlink, Options{})
	if err != nil {
		b.Fatal(err)
	}
	users := []LatLon{{LatDeg: 9.06, LonDeg: 7.49}, {LatDeg: 8.5, LonDeg: 9.0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs, err := svc.PlaceVirtualServer(users, Sticky, State{SessionMB: 32, GenericMB: 512, DirtyRateMBps: 4})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := vs.Run(0, 600, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionWeather(b *testing.B) {
	var tropical8dB float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.WeatherStudy(nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Climate == "tropical" && r.MarginDB == 8 {
				tropical8dB = r.Availability
			}
		}
	}
	b.ReportMetric(tropical8dB*100, "tropical-8dB-availability-pct")
}

func BenchmarkExtensionMatchmaking(b *testing.B) {
	cfg := experiments.MatchmakingConfig{PairsPerBucket: 6, Separations: []float64{6000}}
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Matchmaking(cfg)
		if err != nil {
			b.Fatal(err)
		}
		gap = rows[0].PlayableInOrbit - rows[0].PlayableTerrestrial
	}
	b.ReportMetric(gap*100, "playability-gap-pct-at-6000km")
}

func BenchmarkExtensionChurn(b *testing.B) {
	var meanLife float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ChurnStudy(600, 30)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.MedianPathLifeS
		}
		meanLife = sum / float64(len(rows))
	}
	b.ReportMetric(meanLife, "mean-median-path-life-s")
}

func BenchmarkExtensionCapacity(b *testing.B) {
	var utilAt5pct float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CapacityStudy([]float64{0.05}, 300)
		if err != nil {
			b.Fatal(err)
		}
		utilAt5pct = rows[0].FleetUtilPct
	}
	b.ReportMetric(utilAt5pct, "fleet-util-pct-at-5pct-adoption")
}

func BenchmarkExtensionEdgeLoad(b *testing.B) {
	var spillP99 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.EdgeLoadStudy([]float64{8000})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == "least-busy" {
				spillP99 = r.P99Ms
			}
		}
	}
	b.ReportMetric(spillP99, "least-busy-p99-ms-at-8000rps")
}

func BenchmarkExtensionSeasonalPower(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := power.SeasonalSweep(power.DefaultStarlinkBudget(),
			power.ServerLoad{DrawW: 225}, 550, 53, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		worst = power.WorstSeasonHeadroom(rows)
	}
	b.ReportMetric(worst, "worst-season-headroom-w")
}

func BenchmarkExtensionCDNDistribution(b *testing.B) {
	var orbitalP95 float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CDNStudy(500)
		if err != nil {
			b.Fatal(err)
		}
		orbitalP95 = rows[1].P95Ms
	}
	b.ReportMetric(orbitalP95, "orbital-p95-ms-over-cities")
}

// Fleet-scale control-plane benchmarks (PR 2).

// BenchmarkReachableLinearVsIndex times the same reachable-set queries
// through the O(N) linear scan and the footprint index, and reports the
// speed-up — the index must win by ≥5× at 4,409 satellites.
//
// The headline metric compares CountReachable with CountReachableFrom:
// set determination with identical per-hit work on both sides, which is
// what the fleet hot path performs. The full Pass-materialising pair
// (Reachable vs ReachableFrom) is also timed — its ratio is smaller
// because ~30 visible satellites each pay the same ElevationDeg asin on
// both sides, a per-hit cost no index can remove — and cross-validated
// for agreement.
func BenchmarkReachableLinearVsIndex(b *testing.B) {
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	obs := visibility.NewObserver(c)
	ix, err := fleet.NewIndex(c, 0)
	if err != nil {
		b.Fatal(err)
	}
	snap := c.Snapshot(0)
	ix.Rebuild(snap)
	var grounds []geo.Vec3
	for lat := -55.0; lat <= 55; lat += 11 {
		for lon := -180.0; lon < 180; lon += 45 {
			grounds = append(grounds, geo.LatLon{LatDeg: lat, LonDeg: lon}.ECEF())
		}
	}
	var buf []visibility.Pass
	var linearNs, indexNs, fullLinearNs, fullIndexNs, checksum int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for _, g := range grounds {
			checksum += int64(obs.CountReachable(g, snap))
		}
		linearNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for _, g := range grounds {
			checksum -= int64(ix.CountReachableFrom(g))
		}
		indexNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for _, g := range grounds {
			buf = obs.Reachable(g, snap, buf[:0])
			checksum += int64(len(buf))
		}
		fullLinearNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for _, g := range grounds {
			buf = ix.ReachableFrom(g, buf[:0])
			checksum -= int64(len(buf))
		}
		fullIndexNs += time.Since(start).Nanoseconds()
	}
	b.StopTimer()
	if checksum != 0 {
		b.Fatalf("index and linear scan disagree on reachable counts (checksum %d)", checksum)
	}
	if indexNs > 0 {
		b.ReportMetric(float64(linearNs)/float64(indexNs), "index-speedup-x")
	}
	if fullIndexNs > 0 {
		b.ReportMetric(float64(fullLinearNs)/float64(fullIndexNs), "pass-speedup-x")
	}
	b.ReportMetric(float64(indexNs)/float64(b.N)/float64(len(grounds)), "index-query-ns")
}

// BenchmarkFleetIndexRebuild times re-bucketing all 4,409 satellites — the
// per-epoch fixed cost of the footprint index.
func BenchmarkFleetIndexRebuild(b *testing.B) {
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := fleet.NewIndex(c, 0)
	if err != nil {
		b.Fatal(err)
	}
	snap := c.Snapshot(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Rebuild(snap)
	}
}

// BenchmarkFleetEpoch runs real planner epochs over Starlink with a 5k
// session population — the steady-state cost of the control plane, scaled
// down 20× from the 100k cmd/fleetsim run.
func BenchmarkFleetEpoch(b *testing.B) {
	c, err := constellation.StarlinkPhase1(constellation.Config{})
	if err != nil {
		b.Fatal(err)
	}
	orch, err := fleet.New(c, nil, fleet.Config{Registry: obs.NewRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	groups, err := trace.Groups(trace.GroupConfig{
		Seed: 7, Groups: 5000, MinUsers: 2, MaxUsers: 5, SpreadKm: 300, MaxAbsLatDeg: 55,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i, g := range groups {
		s, err := fleet.NewSession(uint64(i+1), g.Users)
		if err != nil {
			b.Fatal(err)
		}
		if err := orch.Submit(s); err != nil {
			b.Fatal(err)
		}
	}
	if err := orch.Start(0); err != nil {
		b.Fatal(err)
	}
	if _, err := orch.Step(); err != nil { // absorb the initial placement wave
		b.Fatal(err)
	}
	handoffs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := orch.Step()
		if err != nil {
			b.Fatal(err)
		}
		handoffs += rep.Handoffs
	}
	b.ReportMetric(float64(handoffs)/float64(b.N), "handoffs-per-epoch")
}

// BenchmarkFleetTableOps measures the sharded session table under
// concurrent mixed put/get/delete traffic.
func BenchmarkFleetTableOps(b *testing.B) {
	tab := fleet.NewTable(0)
	var next atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := next.Add(1)
			if err := tab.Put(&fleet.Session{ID: id}); err != nil {
				b.Error(err)
				return
			}
			if _, ok := tab.Get(id); !ok {
				b.Error("lost session")
				return
			}
			if id%4 == 0 {
				tab.Delete(id)
			}
		}
	})
}
