// Command obsreport renders flight-recorder artifacts offline: a recorded
// timeline (JSONL, as exported by fleetsim -timeline-out, cmd/figures, or
// the /timeline debug endpoint) becomes a per-series summary table, an HTML
// report, or CSV; a set of BENCH_*.json files becomes a perf-trajectory
// table comparing headline metrics across commits.
//
// Usage:
//
//	obsreport -timeline tl.jsonl                 # per-series summary table
//	obsreport -timeline tl.jsonl -html tl.html   # self-contained HTML report
//	obsreport -timeline tl.jsonl -csv tl.csv     # long-form CSV
//	obsreport -bench BENCH_old.json -bench BENCH_new.json
//
// Both modes compose: one invocation can summarise a timeline and compare
// benchmark files.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	var (
		timeline = flag.String("timeline", "", "recorded timeline JSONL to summarise")
		htmlOut  = flag.String("html", "", "also render the timeline as a self-contained HTML report")
		csvOut   = flag.String("csv", "", "also render the timeline as long-form CSV")
		title    = flag.String("title", "recorded timeline", "report title for -html")
		benches  benchList
	)
	flag.Var(&benches, "bench", "BENCH_*.json file to compare (repeatable; order = column order)")
	flag.Parse()

	if *timeline == "" && len(benches) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *timeline, *htmlOut, *csvOut, *title, benches); err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(1)
	}
}

// benchList collects repeated -bench flags in order.
type benchList []string

func (b *benchList) String() string { return fmt.Sprint([]string(*b)) }
func (b *benchList) Set(s string) error {
	*b = append(*b, s)
	return nil
}

func run(out io.Writer, timeline, htmlOut, csvOut, title string, benches []string) error {
	if timeline != "" {
		if err := timelineReport(out, timeline, htmlOut, csvOut, title); err != nil {
			return err
		}
	}
	if len(benches) > 0 {
		if err := benchReport(out, benches); err != nil {
			return err
		}
	}
	return nil
}
