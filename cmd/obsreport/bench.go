package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/plot"
)

// benchResult / benchFile mirror the BENCH_*.json documents cmd/figures
// -benchjson writes (kept in sync by TestBenchFormatRoundTrip).
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchFile struct {
	GeneratedUnix int64         `json:"generated_unix"`
	Source        string        `json:"source"`
	Benchmarks    []benchResult `json:"benchmarks"`
}

// benchReport renders the perf trajectory across the files, in argument
// order: one row per benchmark metric, one column per file, plus the
// relative change from the first to the last file that carries the metric.
func benchReport(out io.Writer, paths []string) error {
	files := make([]benchFile, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		err = json.NewDecoder(f).Decode(&files[i])
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
	}

	// Collect every benchmark/metric pair, keeping first-seen order of
	// benchmarks and sorting metrics inside one benchmark.
	type cell struct {
		v  float64
		ok bool
	}
	values := map[string][]cell{} // "bench\xffmetric" -> per-file cells
	var keys []string
	for i, bf := range files {
		for _, b := range bf.Benchmarks {
			for metric, v := range b.Metrics {
				key := b.Name + "\xff" + metric
				if _, seen := values[key]; !seen {
					values[key] = make([]cell, len(files))
					keys = append(keys, key)
				}
				values[key][i] = cell{v: v, ok: true}
			}
		}
	}
	sort.Strings(keys)

	header := []string{"benchmark", "metric"}
	for i, p := range paths {
		col := filepath.Base(p)
		if g := files[i].GeneratedUnix; g > 0 {
			col += fmt.Sprintf(" (@%d)", g)
		}
		header = append(header, col)
	}
	header = append(header, "change")

	rows := make([][]string, 0, len(keys))
	for _, key := range keys {
		name, metric, _ := strings.Cut(key, "\xff")
		row := []string{name, metric}
		cells := values[key]
		first, last := math.NaN(), math.NaN()
		for _, c := range cells {
			if !c.ok {
				row = append(row, "—")
				continue
			}
			if math.IsNaN(first) {
				first = c.v
			}
			last = c.v
			row = append(row, fmt.Sprintf("%.4g", c.v))
		}
		row = append(row, changeText(first, last))
		rows = append(rows, row)
	}

	fmt.Fprintf(out, "\nperf trajectory — %d files, %d metrics\n\n", len(files), len(rows))
	return plot.Table(out, header, rows)
}

// changeText formats last-vs-first drift; lower is not assumed better, so
// it reports the signed percentage without a verdict.
func changeText(first, last float64) string {
	if math.IsNaN(first) || math.IsNaN(last) || first == last {
		return "="
	}
	if first == 0 {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(last-first)/first)
}
