package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// recordSample builds a small two-frame timeline export on disk.
func recordSample(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	c := reg.Counter("demo_total", "demo counter")
	g := reg.Gauge("demo_level", "demo gauge")
	q := reg.Quantile("demo_ms", "demo quantile")
	tl := obs.NewTimeline(reg, obs.TimelineConfig{CadenceSec: 10})

	c.Add(5)
	g.Set(2)
	q.Observe(1.5)
	tl.Record(10)
	c.Add(7)
	g.Set(3)
	q.Observe(4.5)
	tl.Record(20)

	path := filepath.Join(t.TempDir(), "tl.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTimelineReport(t *testing.T) {
	path := recordSample(t)
	dir := filepath.Dir(path)
	htmlOut := filepath.Join(dir, "tl.html")
	csvOut := filepath.Join(dir, "tl.csv")

	var out bytes.Buffer
	if err := run(&out, path, htmlOut, csvOut, "test", nil); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"2 frames", "demo_total", "total 12", "demo_level", "last 3", "demo_ms"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q in:\n%s", want, got)
		}
	}

	html, err := os.ReadFile(htmlOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "<svg") || !strings.Contains(string(html), "demo_total") {
		t.Error("HTML report missing chart or series name")
	}
	csv, err := os.ReadFile(csvOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "t_sec,name,labels,field,value\n") {
		t.Errorf("CSV header wrong: %q", strings.SplitN(string(csv), "\n", 2)[0])
	}
}

func TestTimelineReportEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&bytes.Buffer{}, path, "", "", "t", nil); err == nil {
		t.Fatal("expected error for frame-less timeline")
	}
}

func writeBench(t *testing.T, name string, gen int64, metrics map[string]float64) string {
	t.Helper()
	bf := benchFile{GeneratedUnix: gen, Source: "test", Benchmarks: []benchResult{
		{Name: "Demo", Iterations: 1, Metrics: metrics},
	}}
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(f).Encode(bf); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchTrajectory(t *testing.T) {
	a := writeBench(t, "BENCH_a.json", 100, map[string]float64{"ns/op": 1000, "only-a": 7})
	b := writeBench(t, "BENCH_b.json", 200, map[string]float64{"ns/op": 1500})

	var out bytes.Buffer
	if err := run(&out, "", "", "", "", []string{a, b}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"2 files", "Demo", "ns/op", "+50.0%", "only-a"} {
		if !strings.Contains(got, want) {
			t.Errorf("trajectory missing %q in:\n%s", want, got)
		}
	}
}

func TestBenchReportCommittedFormat(t *testing.T) {
	// The repo's committed BENCH files must stay readable by the tool.
	for _, p := range []string{"../../BENCH_obs.json", "../../BENCH_ephem.json",
		"../../BENCH_netgraph.json", "../../BENCH_serve.json"} {
		if _, err := os.Stat(p); err != nil {
			t.Skipf("%s not present", p)
		}
		var out bytes.Buffer
		if err := benchReport(&out, []string{p}); err != nil {
			t.Errorf("benchReport(%s): %v", p, err)
			continue
		}
		if strings.HasSuffix(p, "BENCH_serve.json") {
			// The sharded serve engine's headline metric must surface in
			// the perf trajectory, not just in the raw JSON.
			if got := out.String(); !strings.Contains(got, "serve-parallel-speedup-x") {
				t.Errorf("serve trajectory missing serve-parallel-speedup-x:\n%s", got)
			}
		}
	}
}
