package main

import (
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/plot"
)

// seriesSummary accumulates one series (family + label set) across frames.
type seriesSummary struct {
	name   string
	labels string
	kind   obs.Kind

	frames   int
	total    float64 // summed deltas (counter/histogram/quantile counts)
	sum      float64 // summed sum-deltas (histogram/quantile)
	maxRate  float64
	last     float64 // last gauge level
	min, max float64 // gauge extremes
	lastQ    []obs.QuantilePoint
}

// timelineReport reads a JSONL export, prints the per-series summary, and
// optionally re-renders it as HTML and/or CSV.
func timelineReport(out io.Writer, path, htmlOut, csvOut, title string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	frames, err := obs.ReadFramesJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(frames) == 0 {
		return fmt.Errorf("%s: no frames", path)
	}

	span := frames[len(frames)-1].TSec - frames[0].TSec
	fmt.Fprintf(out, "timeline %s — %d frames over %gs\n\n", path, len(frames), span)
	if err := plot.Table(out, []string{"series", "kind", "frames", "summary"},
		summarise(frames)); err != nil {
		return err
	}

	if htmlOut != "" {
		if err := renderTo(htmlOut, func(w io.Writer) error {
			return obs.WriteFramesHTML(w, title, frames)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", htmlOut)
	}
	if csvOut != "" {
		if err := renderTo(csvOut, func(w io.Writer) error {
			return obs.WriteFramesCSV(w, frames)
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", csvOut)
	}
	return nil
}

func renderTo(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = render(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// summarise folds the frames into one table row per series.
func summarise(frames []obs.Frame) [][]string {
	byKey := map[string]*seriesSummary{}
	var order []string
	for _, fr := range frames {
		for _, p := range fr.Points {
			key := p.Name + "\xff" + labelString(p.Labels)
			s := byKey[key]
			if s == nil {
				s = &seriesSummary{name: p.Name, labels: labelString(p.Labels), kind: p.Kind,
					min: math.Inf(1), max: math.Inf(-1)}
				byKey[key] = s
				order = append(order, key)
			}
			s.frames++
			switch p.Kind {
			case obs.KindGauge:
				s.last = p.Value
				s.min = math.Min(s.min, p.Value)
				s.max = math.Max(s.max, p.Value)
			default:
				s.total += p.Value
				s.sum += p.Sum
				s.maxRate = math.Max(s.maxRate, p.Rate)
				if len(p.Quantiles) > 0 {
					s.lastQ = p.Quantiles
				}
			}
		}
	}
	sort.Strings(order)
	rows := make([][]string, 0, len(order))
	for _, key := range order {
		s := byKey[key]
		name := s.name
		if s.labels != "" {
			name += "{" + s.labels + "}"
		}
		rows = append(rows, []string{name, string(s.kind), fmt.Sprint(s.frames), s.text()})
	}
	return rows
}

// text renders the kind-appropriate one-line summary.
func (s *seriesSummary) text() string {
	switch s.kind {
	case obs.KindGauge:
		return fmt.Sprintf("last %g (min %g, max %g)", s.last, s.min, s.max)
	case obs.KindCounter:
		return fmt.Sprintf("total %g (peak rate %.4g/s)", s.total, s.maxRate)
	case obs.KindQuantile:
		line := fmt.Sprintf("count %g", s.total)
		for _, qp := range s.lastQ {
			line += fmt.Sprintf(", p%g %.4g", qp.P*100, qp.Value)
		}
		return line
	default: // histogram
		return fmt.Sprintf("count %g, sum %.4g (peak rate %.4g/s)", s.total, s.sum, s.maxRate)
	}
}

func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k + "=" + labels[k]
	}
	return out
}
