// Command meetupd is a real TCP "meetup server" demonstrating virtual
// stationarity end to end: it hosts shared session state for multiple
// clients and can live-migrate that state to a successor meetupd instance
// over the migrate wire protocol — the software path a satellite-server
// would run before its hand-off.
//
// Client protocol (one command per line):
//
//	JOIN <name>        register a participant
//	SET <key> <value>  write shared state
//	GET <key>          read shared state (reply: VALUE <v> | MISSING)
//	SEQ                reply the state sequence number
//	QUIT               close the connection
//
// Admin protocol on -admin (one command per line):
//
//	MIGRATE <host:port>  push state to the successor and drain
//	STATUS               reply state size and sequence
//
// A second instance started with the same flags receives the state
// automatically: migration connections are recognised by a handshake line.
// Handshake version 2 ("IOSM-MIGRATION/2") is resumable: the receiver
// replies "RESUME <generic> <session>" with the byte offsets it already
// holds from an interrupted attempt, and the sender continues from there.
// Version 1 (blind push) is still accepted for old senders.
//
// Every migration socket operation carries an -iotimeout deadline, so a
// wedged peer cannot hold a handler — or shutdown — hostage: when the
// -draintimeout expires, remaining connections get their deadlines forced
// and drain completes.
//
// With -debug addr the server exposes /metrics (Prometheus text, or
// ?format=json), /healthz, /debug/vars, and /debug/pprof on that address.
// SIGINT/SIGTERM drains gracefully: listeners close, in-flight connections
// get -draintimeout to finish, and the final metrics snapshot is logged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/migrate"
	"repro/internal/obs"
)

const (
	migrationHandshake   = "IOSM-MIGRATION/1"
	migrationHandshakeV2 = "IOSM-MIGRATION/2"

	// migrateAttempts bounds how often an outbound migration retries a
	// failed transfer before rolling back to serving.
	migrateAttempts = 3
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7070", "client listen address")
		admin  = flag.String("admin", "127.0.0.1:7071", "admin listen address")
		name   = flag.String("name", "sat-A", "server name (shown in replies)")
		debug  = flag.String("debug", "", "debug listen address for /metrics, /healthz, /debug/pprof (empty = off)")
		drain  = flag.Duration("draintimeout", 5*time.Second, "how long shutdown waits for in-flight connections")
		ioTO   = flag.Duration("iotimeout", 10*time.Second, "per-operation socket deadline on migration transfers (0 = none)")
	)
	flag.Parse()

	srv := newServer(*name, obs.Default())
	srv.drainTimeout = *drain
	srv.ioTimeout = *ioTO
	migrate.SetTracer(srv.tracer)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("meetupd: listen: %v", err)
	}
	aln, err := net.Listen("tcp", *admin)
	if err != nil {
		log.Fatalf("meetupd: admin listen: %v", err)
	}

	if *debug != "" {
		dln, err := net.Listen("tcp", *debug)
		if err != nil {
			log.Fatalf("meetupd: debug listen: %v", err)
		}
		obs.RegisterRuntimeMetrics(srv.reg) // refreshed by the mux's pre-scrape hook
		mux := obs.DebugMux(srv.reg)
		go func() {
			if err := http.Serve(dln, mux); err != nil {
				log.Printf("meetupd: debug server: %v", err)
			}
		}()
		log.Printf("meetupd %s: debug endpoint on http://%s/metrics", *name, dln.Addr())
	}

	log.Printf("meetupd %s: clients on %s, admin on %s", *name, ln.Addr(), aln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	srv.run(ln, aln, sig)
}

// session is the migratable application state: a shared key-value world
// plus a sequence number, the "session-specific state" of §5.
type session struct {
	Seq    uint64            `json:"seq"`
	Values map[string]string `json:"values"`
	Users  []string          `json:"users"`
}

// metrics holds the server's instrument handles; families live on the
// registry passed to newServer (obs.Default() in production, a fresh
// registry in tests).
type metrics struct {
	conns      *obs.CounterVec // meetupd_connections_total{kind}
	commands   *obs.CounterVec // meetupd_commands_total{verb}
	migrations *obs.CounterVec // meetupd_migrations_total{direction,result}
	migBytes   *obs.CounterVec // meetupd_migration_bytes_total{direction}
	migSeconds *obs.Histogram  // meetupd_migration_seconds
	stateKeys  *obs.Gauge      // meetupd_state_keys
	stateUsers *obs.Gauge      // meetupd_state_users
	seq        *obs.Gauge      // meetupd_seq
	serving    *obs.Gauge      // meetupd_serving
}

func newMetrics(reg *obs.Registry) *metrics {
	m := &metrics{
		conns: reg.CounterVec("meetupd_connections_total",
			"Accepted connections by kind.", "kind"),
		commands: reg.CounterVec("meetupd_commands_total",
			"Client commands executed by verb.", "verb"),
		migrations: reg.CounterVec("meetupd_migrations_total",
			"State migrations by direction and result.", "direction", "result"),
		migBytes: reg.CounterVec("meetupd_migration_bytes_total",
			"Session-state payload bytes migrated.", "direction"),
		migSeconds: reg.Histogram("meetupd_migration_seconds",
			"Wall time of state migrations.", nil),
		stateKeys:  reg.Gauge("meetupd_state_keys", "Keys in the shared session state."),
		stateUsers: reg.Gauge("meetupd_state_users", "Participants joined to the session."),
		seq:        reg.Gauge("meetupd_seq", "Session state sequence number."),
		serving:    reg.Gauge("meetupd_serving", "1 while authoritative for the session, 0 after migrating away."),
	}
	// Pre-create the label series the demo always reports, so a scrape of a
	// fresh server already shows them at zero.
	for _, kind := range []string{"client", "admin", "migration"} {
		m.conns.With(kind)
	}
	for _, verb := range commandVerbs {
		m.commands.With(verb)
	}
	for _, dir := range []string{"in", "out"} {
		m.migBytes.With(dir)
	}
	return m
}

var commandVerbs = []string{"JOIN", "SET", "GET", "SEQ", "QUIT"}

type server struct {
	name         string
	reg          *obs.Registry
	m            *metrics
	tracer       *obs.Tracer
	drainTimeout time.Duration
	ioTimeout    time.Duration // per-operation migration socket deadline

	closing atomic.Bool    // shutdown started: accept-loop errors are expected
	connWG  sync.WaitGroup // in-flight connection handlers

	connMu sync.Mutex
	conns  map[net.Conn]struct{} // open connections, for forced-drain deadlines

	importMu sync.Mutex // serialises inbound migrations

	mu      sync.Mutex
	state   session
	serving bool // false after migrating away
	// rx holds a partially received inbound migration across connections,
	// so an interrupted transfer resumes instead of restarting.
	rx *migrate.Receiver
}

func newServer(name string, reg *obs.Registry) *server {
	s := &server{
		name:         name,
		reg:          reg,
		m:            newMetrics(reg),
		tracer:       obs.NewTracer(nil),
		drainTimeout: 5 * time.Second,
		ioTimeout:    10 * time.Second,
		conns:        map[net.Conn]struct{}{},
		state:        session{Values: map[string]string{}},
		serving:      true,
	}
	s.m.serving.Set(1)
	return s
}

// run serves both listeners until a signal arrives, then drains: close the
// listeners (no new connections), give in-flight handlers drainTimeout to
// finish, and log the final metrics snapshot.
func (s *server) run(ln, aln net.Listener, sig <-chan os.Signal) {
	var accept sync.WaitGroup
	accept.Add(2)
	go func() { defer accept.Done(); s.acceptLoop(ln, "client", s.handleClientOrMigration) }()
	go func() { defer accept.Done(); s.acceptLoop(aln, "admin", s.handleAdmin) }()

	got := <-sig
	log.Printf("meetupd %s: %v received, draining", s.name, got)
	s.closing.Store(true)
	ln.Close()
	aln.Close()
	accept.Wait()

	done := make(chan struct{})
	go func() { s.connWG.Wait(); close(done) }()
	select {
	case <-done:
		log.Printf("meetupd %s: all connections drained", s.name)
	case <-time.After(s.drainTimeout):
		// A wedged peer (e.g. a stalled migration) must not hold shutdown
		// hostage: force every remaining connection's deadline so blocked
		// reads and writes fail now, then wait for the handlers to exit.
		n := s.forceDeadlines()
		log.Printf("meetupd %s: drain timeout (%v) expired, forcing %d connection(s) closed", s.name, s.drainTimeout, n)
		<-done
	}

	var final strings.Builder
	if err := s.reg.WritePrometheus(&final); err == nil {
		log.Printf("meetupd %s: final metrics snapshot:\n%s", s.name, final.String())
	}
}

func (s *server) acceptLoop(ln net.Listener, kind string, handle func(net.Conn)) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if !s.closing.Load() {
				log.Printf("meetupd: accept: %v", err)
			}
			return
		}
		s.m.conns.With(kind).Inc()
		s.connWG.Add(1)
		s.track(conn)
		go func() {
			defer s.connWG.Done()
			defer s.untrack(conn)
			handle(conn)
		}()
	}
}

// track registers an open connection for forced-drain deadlines.
func (s *server) track(conn net.Conn) {
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
}

func (s *server) untrack(conn net.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// forceDeadlines sets an already-expired deadline on every tracked
// connection so any blocked read or write fails immediately; it returns
// how many connections were forced.
func (s *server) forceDeadlines() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	for conn := range s.conns {
		conn.SetDeadline(time.Now())
	}
	return len(s.conns)
}

// handleClientOrMigration peeks the first line: a migration handshake makes
// this connection a state import (v2 is resumable); anything else is a
// client command stream.
func (s *server) handleClientOrMigration(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	first, err := br.ReadString('\n')
	if err != nil {
		return
	}
	switch strings.TrimSpace(first) {
	case migrationHandshake:
		s.m.conns.With("migration").Inc()
		s.importState(conn, br, false)
	case migrationHandshakeV2:
		s.m.conns.With("migration").Inc()
		s.importState(conn, br, true)
	default:
		s.serveClient(conn, br, first)
	}
}

// importState receives a migration push. For a v2 (resumable) sender it
// first replies the generic/session byte offsets already held, so an
// interrupted transfer continues instead of restarting; partial state
// survives in s.rx across connections. Every socket operation carries the
// io timeout, so a wedged sender cannot pin the handler.
func (s *server) importState(conn net.Conn, br *bufio.Reader, resumable bool) {
	start := time.Now()
	// One import at a time: concurrent senders would interleave frames
	// into the shared resume buffer.
	s.importMu.Lock()
	defer s.importMu.Unlock()

	s.mu.Lock()
	rx := s.rx
	if rx == nil || !resumable {
		// v1 senders always restart from scratch: they cannot skip the
		// prefix we already hold, so appending would corrupt the state.
		rx = &migrate.Receiver{}
		s.rx = rx
	}
	s.mu.Unlock()

	if resumable {
		g, sess := rx.Offsets()
		w := migrate.TimeoutWriter(conn, conn, s.ioTimeout)
		if _, err := fmt.Fprintf(w, "RESUME %d %d\n", g, sess); err != nil {
			log.Printf("meetupd %s: resume offer failed: %v", s.name, err)
			return
		}
	}
	if err := rx.Receive(migrate.TimeoutReader(br, conn, s.ioTimeout)); err != nil {
		s.m.migrations.With("in", "error").Inc()
		log.Printf("meetupd %s: state import failed (will resume at %v): %v", s.name, offsetString(rx), err)
		return
	}
	var st session
	if err := json.Unmarshal(rx.Session, &st); err != nil {
		s.m.migrations.With("in", "error").Inc()
		log.Printf("meetupd %s: state decode failed: %v", s.name, err)
		s.mu.Lock()
		s.rx = nil // assembled state is broken; a retry must start over
		s.mu.Unlock()
		return
	}
	generic := rx.Generic
	s.mu.Lock()
	s.state = st
	s.serving = true
	s.rx = nil
	s.mu.Unlock()
	s.m.migrations.With("in", "ok").Inc()
	s.m.migBytes.With("in").Add(uint64(len(generic) + len(rx.Session)))
	s.m.migSeconds.Observe(time.Since(start).Seconds())
	s.setStateGauges(st, true)
	log.Printf("meetupd %s: imported state (seq=%d, %d keys, %d B generic)", s.name, st.Seq, len(st.Values), len(generic))
	fmt.Fprintf(migrate.TimeoutWriter(conn, conn, s.ioTimeout), "IMPORTED %d\n", st.Seq)
}

func offsetString(rx *migrate.Receiver) string {
	g, sess := rx.Offsets()
	return fmt.Sprintf("generic=%d session=%d", g, sess)
}

// setStateGauges publishes the session shape; call with a copy, outside mu.
func (s *server) setStateGauges(st session, serving bool) {
	s.m.stateKeys.Set(float64(len(st.Values)))
	s.m.stateUsers.Set(float64(len(st.Users)))
	s.m.seq.Set(float64(st.Seq))
	if serving {
		s.m.serving.Set(1)
	} else {
		s.m.serving.Set(0)
	}
}

func (s *server) serveClient(conn net.Conn, br *bufio.Reader, first string) {
	line := first
	for {
		reply, quit := s.execute(strings.TrimSpace(line))
		if _, err := fmt.Fprintln(conn, reply); err != nil || quit {
			return
		}
		var err error
		line, err = br.ReadString('\n')
		if err != nil {
			return
		}
	}
}

// countVerb bounds the verb label to the known command set.
func (s *server) countVerb(verb string) {
	switch verb {
	case "JOIN", "SET", "GET", "SEQ", "QUIT":
		s.m.commands.With(verb).Inc()
	default:
		s.m.commands.With("other").Inc()
	}
}

func (s *server) execute(line string) (reply string, quit bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		s.countVerb("other")
		return "ERR empty command", false
	}
	verb := strings.ToUpper(fields[0])
	s.countVerb(verb)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.serving {
		return "MOVED", true // the client must re-resolve the successor
	}
	switch verb {
	case "JOIN":
		if len(fields) != 2 {
			return "ERR usage: JOIN <name>", false
		}
		s.state.Users = append(s.state.Users, fields[1])
		s.state.Seq++
		s.m.stateUsers.Set(float64(len(s.state.Users)))
		s.m.seq.Set(float64(s.state.Seq))
		return fmt.Sprintf("WELCOME %s@%s seq=%d", fields[1], s.name, s.state.Seq), false
	case "SET":
		if len(fields) < 3 {
			return "ERR usage: SET <key> <value>", false
		}
		s.state.Values[fields[1]] = strings.Join(fields[2:], " ")
		s.state.Seq++
		s.m.stateKeys.Set(float64(len(s.state.Values)))
		s.m.seq.Set(float64(s.state.Seq))
		return fmt.Sprintf("OK seq=%d", s.state.Seq), false
	case "GET":
		if len(fields) != 2 {
			return "ERR usage: GET <key>", false
		}
		if v, ok := s.state.Values[fields[1]]; ok {
			return "VALUE " + v, false
		}
		return "MISSING", false
	case "SEQ":
		return fmt.Sprintf("SEQ %d", s.state.Seq), false
	case "QUIT":
		return "BYE", true
	}
	return "ERR unknown command", false
}

func (s *server) handleAdmin(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "STATUS":
			s.mu.Lock()
			fmt.Fprintf(conn, "STATUS serving=%v seq=%d keys=%d users=%d\n",
				s.serving, s.state.Seq, len(s.state.Values), len(s.state.Users))
			s.mu.Unlock()
		case "MIGRATE":
			if len(fields) != 2 {
				fmt.Fprintln(conn, "ERR usage: MIGRATE <host:port>")
				continue
			}
			if err := s.migrateTo(fields[1]); err != nil {
				fmt.Fprintf(conn, "ERR %v\n", err)
				continue
			}
			fmt.Fprintln(conn, "MIGRATED")
		default:
			fmt.Fprintln(conn, "ERR unknown admin command")
		}
	}
}

// migrateTo pushes the session to the successor and stops serving — the
// stop-and-copy cut-over of a live migration (the pre-copy rounds are
// implicit here: session state is small, per §5's session/generic split).
// Transfers use the resumable v2 handshake and retry up to migrateAttempts
// times, continuing from the bytes the successor already holds; only after
// the final attempt fails does the server roll back to serving, so a flaky
// link degrades to a delayed hand-off rather than a lost session.
func (s *server) migrateTo(addr string) error {
	start := time.Now()
	outcome := "error"
	defer func() { s.m.migrations.With("out", outcome).Inc() }()

	s.mu.Lock()
	if !s.serving {
		s.mu.Unlock()
		return fmt.Errorf("already migrated away")
	}
	payload, err := json.Marshal(s.state)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.serving = false // cut-over: stop accepting writes
	s.mu.Unlock()
	s.m.serving.Set(0)

	var lastErr error
	for attempt := 1; attempt <= migrateAttempts; attempt++ {
		ack, err := s.pushState(addr, payload)
		if err == nil {
			outcome = "ok"
			s.m.migBytes.With("out").Add(uint64(len(payload)))
			s.m.migSeconds.Observe(time.Since(start).Seconds())
			log.Printf("meetupd %s: migrated to %s (%s)", s.name, addr, ack)
			return nil
		}
		lastErr = err
		s.m.migrations.With("out", "retry").Inc()
		log.Printf("meetupd %s: migration attempt %d/%d to %s failed: %v", s.name, attempt, migrateAttempts, addr, err)
	}

	s.mu.Lock()
	s.serving = true // roll back: the successor never took over
	s.mu.Unlock()
	s.m.serving.Set(1)
	return fmt.Errorf("after %d attempts: %w", migrateAttempts, lastErr)
}

// pushState runs one transfer attempt: dial, v2 handshake, resume from the
// successor's offsets, send, and await the IMPORTED ack. Every operation
// carries the io timeout so a wedged successor fails the attempt instead
// of hanging the admin handler.
func (s *server) pushState(addr string, payload []byte) (ack string, err error) {
	dialTO := s.ioTimeout
	conn, err := net.DialTimeout("tcp", addr, dialTO)
	if err != nil {
		return "", fmt.Errorf("dial successor: %w", err)
	}
	defer conn.Close()

	w := migrate.TimeoutWriter(conn, conn, s.ioTimeout)
	br := bufio.NewReader(migrate.TimeoutReader(conn, conn, s.ioTimeout))
	if _, err := fmt.Fprintln(w, migrationHandshakeV2); err != nil {
		return "", err
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("resume offer: %w", err)
	}
	var genericOff, sessionOff int
	if _, err := fmt.Sscanf(line, "RESUME %d %d", &genericOff, &sessionOff); err != nil {
		return "", fmt.Errorf("bad resume offer %q: %w", strings.TrimSpace(line), err)
	}
	if err := migrate.SendStateResumable(w, nil, payload, genericOff, sessionOff, 0); err != nil {
		return "", err
	}
	line, err = br.ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("successor ack: %w", err)
	}
	return strings.TrimSpace(line), nil
}

// Ensure log goes to stderr so stdout stays machine-readable if piped.
func init() { log.SetOutput(os.Stderr) }
