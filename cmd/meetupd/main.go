// Command meetupd is a real TCP "meetup server" demonstrating virtual
// stationarity end to end: it hosts shared session state for multiple
// clients and can live-migrate that state to a successor meetupd instance
// over the migrate wire protocol — the software path a satellite-server
// would run before its hand-off.
//
// Client protocol (one command per line):
//
//	JOIN <name>        register a participant
//	SET <key> <value>  write shared state
//	GET <key>          read shared state (reply: VALUE <v> | MISSING)
//	SEQ                reply the state sequence number
//	QUIT               close the connection
//
// Admin protocol on -admin (one command per line):
//
//	MIGRATE <host:port>  push state to the successor and drain
//	STATUS               reply state size and sequence
//
// A second instance started with the same flags receives the state
// automatically: migration connections are recognised by a handshake line.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"sync"

	"repro/internal/migrate"
)

const migrationHandshake = "IOSM-MIGRATION/1"

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:7070", "client listen address")
		admin  = flag.String("admin", "127.0.0.1:7071", "admin listen address")
		name   = flag.String("name", "sat-A", "server name (shown in replies)")
	)
	flag.Parse()

	srv := newServer(*name)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("meetupd: listen: %v", err)
	}
	aln, err := net.Listen("tcp", *admin)
	if err != nil {
		log.Fatalf("meetupd: admin listen: %v", err)
	}
	log.Printf("meetupd %s: clients on %s, admin on %s", *name, ln.Addr(), aln.Addr())

	go srv.acceptLoop(ln, srv.handleClientOrMigration)
	srv.acceptLoop(aln, srv.handleAdmin)
}

// session is the migratable application state: a shared key-value world
// plus a sequence number, the "session-specific state" of §5.
type session struct {
	Seq    uint64            `json:"seq"`
	Values map[string]string `json:"values"`
	Users  []string          `json:"users"`
}

type server struct {
	name string

	mu      sync.Mutex
	state   session
	serving bool // false after migrating away
}

func newServer(name string) *server {
	return &server{name: name, state: session{Values: map[string]string{}}, serving: true}
}

func (s *server) acceptLoop(ln net.Listener, handle func(net.Conn)) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("meetupd: accept: %v", err)
			return
		}
		go handle(conn)
	}
}

// handleClientOrMigration peeks the first line: a migration handshake makes
// this connection a state import; anything else is a client command stream.
func (s *server) handleClientOrMigration(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	first, err := br.ReadString('\n')
	if err != nil {
		return
	}
	if strings.TrimSpace(first) == migrationHandshake {
		s.importState(conn, br)
		return
	}
	s.serveClient(conn, br, first)
}

func (s *server) importState(conn net.Conn, br *bufio.Reader) {
	generic, sess, err := migrate.ReceiveState(br)
	if err != nil {
		log.Printf("meetupd %s: state import failed: %v", s.name, err)
		return
	}
	var st session
	if err := json.Unmarshal(sess, &st); err != nil {
		log.Printf("meetupd %s: state decode failed: %v", s.name, err)
		return
	}
	s.mu.Lock()
	s.state = st
	s.serving = true
	s.mu.Unlock()
	log.Printf("meetupd %s: imported state (seq=%d, %d keys, %d B generic)", s.name, st.Seq, len(st.Values), len(generic))
	fmt.Fprintf(conn, "IMPORTED %d\n", st.Seq)
}

func (s *server) serveClient(conn net.Conn, br *bufio.Reader, first string) {
	line := first
	for {
		reply, quit := s.execute(strings.TrimSpace(line))
		if _, err := fmt.Fprintln(conn, reply); err != nil || quit {
			return
		}
		var err error
		line, err = br.ReadString('\n')
		if err != nil {
			return
		}
	}
}

func (s *server) execute(line string) (reply string, quit bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "ERR empty command", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.serving {
		return "MOVED", true // the client must re-resolve the successor
	}
	switch strings.ToUpper(fields[0]) {
	case "JOIN":
		if len(fields) != 2 {
			return "ERR usage: JOIN <name>", false
		}
		s.state.Users = append(s.state.Users, fields[1])
		s.state.Seq++
		return fmt.Sprintf("WELCOME %s@%s seq=%d", fields[1], s.name, s.state.Seq), false
	case "SET":
		if len(fields) < 3 {
			return "ERR usage: SET <key> <value>", false
		}
		s.state.Values[fields[1]] = strings.Join(fields[2:], " ")
		s.state.Seq++
		return fmt.Sprintf("OK seq=%d", s.state.Seq), false
	case "GET":
		if len(fields) != 2 {
			return "ERR usage: GET <key>", false
		}
		if v, ok := s.state.Values[fields[1]]; ok {
			return "VALUE " + v, false
		}
		return "MISSING", false
	case "SEQ":
		return fmt.Sprintf("SEQ %d", s.state.Seq), false
	case "QUIT":
		return "BYE", true
	}
	return "ERR unknown command", false
}

func (s *server) handleAdmin(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "STATUS":
			s.mu.Lock()
			fmt.Fprintf(conn, "STATUS serving=%v seq=%d keys=%d users=%d\n",
				s.serving, s.state.Seq, len(s.state.Values), len(s.state.Users))
			s.mu.Unlock()
		case "MIGRATE":
			if len(fields) != 2 {
				fmt.Fprintln(conn, "ERR usage: MIGRATE <host:port>")
				continue
			}
			if err := s.migrateTo(fields[1]); err != nil {
				fmt.Fprintf(conn, "ERR %v\n", err)
				continue
			}
			fmt.Fprintln(conn, "MIGRATED")
		default:
			fmt.Fprintln(conn, "ERR unknown admin command")
		}
	}
}

// migrateTo pushes the session to the successor and stops serving — the
// stop-and-copy cut-over of a live migration (the pre-copy rounds are
// implicit here: session state is small, per §5's session/generic split).
func (s *server) migrateTo(addr string) error {
	s.mu.Lock()
	if !s.serving {
		s.mu.Unlock()
		return fmt.Errorf("already migrated away")
	}
	payload, err := json.Marshal(s.state)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.serving = false // cut-over: stop accepting writes
	s.mu.Unlock()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		s.mu.Lock()
		s.serving = true // roll back: successor unreachable
		s.mu.Unlock()
		return fmt.Errorf("dial successor: %w", err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, migrationHandshake); err != nil {
		return err
	}
	if err := migrate.SendState(conn, nil, payload); err != nil {
		return err
	}
	ack, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("successor ack: %w", err)
	}
	log.Printf("meetupd %s: migrated to %s (%s)", s.name, addr, strings.TrimSpace(ack))
	return nil
}

// Ensure log goes to stderr so stdout stays machine-readable if piped.
func init() { log.SetOutput(os.Stderr) }
