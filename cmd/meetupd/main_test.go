package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

func TestExecuteCommands(t *testing.T) {
	s := newServer("sat-T")
	tests := []struct {
		cmd        string
		wantPrefix string
		wantQuit   bool
	}{
		{"JOIN alice", "WELCOME alice@sat-T", false},
		{"SET score 42", "OK seq=2", false},
		{"GET score", "VALUE 42", false},
		{"GET missing", "MISSING", false},
		{"SET phrase hello world", "OK", false},
		{"GET phrase", "VALUE hello world", false},
		{"SEQ", "SEQ 3", false},
		{"", "ERR", false},
		{"FROB", "ERR unknown", false},
		{"JOIN", "ERR usage", false},
		{"SET only-key", "ERR usage", false},
		{"GET a b", "ERR usage", false},
		{"quit", "BYE", true},
	}
	for _, tc := range tests {
		reply, quit := s.execute(tc.cmd)
		if !strings.HasPrefix(reply, tc.wantPrefix) {
			t.Errorf("execute(%q) = %q, want prefix %q", tc.cmd, reply, tc.wantPrefix)
		}
		if quit != tc.wantQuit {
			t.Errorf("execute(%q) quit = %v", tc.cmd, quit)
		}
	}
}

func TestExecuteAfterMigration(t *testing.T) {
	s := newServer("sat-T")
	s.mu.Lock()
	s.serving = false
	s.mu.Unlock()
	reply, quit := s.execute("SET k v")
	if reply != "MOVED" || !quit {
		t.Fatalf("drained server replied %q quit=%v, want MOVED/true", reply, quit)
	}
}

// startServer spins up a full meetupd instance on ephemeral ports.
func startServer(t *testing.T, name string) (s *server, clientAddr, adminAddr string) {
	t.Helper()
	s = newServer(name)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); aln.Close() })
	go s.acceptLoop(ln, s.handleClientOrMigration)
	go s.acceptLoop(aln, s.handleAdmin)
	return s, ln.Addr().String(), aln.Addr().String()
}

func roundTrip(t *testing.T, conn net.Conn, br *bufio.Reader, cmd string) string {
	t.Helper()
	if _, err := fmt.Fprintln(conn, cmd); err != nil {
		t.Fatal(err)
	}
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func TestFullMigrationInProcess(t *testing.T) {
	_, aClient, aAdmin := startServer(t, "sat-A")
	_, bClient, _ := startServer(t, "sat-B")

	// Populate A over a real socket.
	conn, err := net.DialTimeout("tcp", aClient, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if got := roundTrip(t, conn, br, "JOIN p1"); !strings.HasPrefix(got, "WELCOME") {
		t.Fatalf("JOIN: %q", got)
	}
	for i := 0; i < 25; i++ {
		if got := roundTrip(t, conn, br, fmt.Sprintf("SET k%d v%d", i, i)); !strings.HasPrefix(got, "OK") {
			t.Fatalf("SET: %q", got)
		}
	}
	seqA := roundTrip(t, conn, br, "SEQ")

	// Admin: status then migrate.
	adm, err := net.DialTimeout("tcp", aAdmin, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	abr := bufio.NewReader(adm)
	if got := roundTrip(t, adm, abr, "STATUS"); !strings.Contains(got, "serving=true") {
		t.Fatalf("STATUS: %q", got)
	}
	if got := roundTrip(t, adm, abr, "MIGRATE "+bClient); got != "MIGRATED" {
		t.Fatalf("MIGRATE: %q", got)
	}
	// A refuses writes now.
	if got := roundTrip(t, conn, br, "SET late v"); got != "MOVED" {
		t.Fatalf("post-migration write: %q", got)
	}

	// B carries the state.
	bc, err := net.DialTimeout("tcp", bClient, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	bbr := bufio.NewReader(bc)
	if got := roundTrip(t, bc, bbr, "SEQ"); got != seqA {
		t.Fatalf("SEQ after migration: %q, want %q", got, seqA)
	}
	if got := roundTrip(t, bc, bbr, "GET k7"); got != "VALUE v7" {
		t.Fatalf("GET k7: %q", got)
	}
}

func TestMigrateErrors(t *testing.T) {
	s, _, aAdmin := startServer(t, "sat-A")
	adm, err := net.DialTimeout("tcp", aAdmin, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	abr := bufio.NewReader(adm)
	// Unreachable successor: migration fails, server keeps serving.
	if got := roundTrip(t, adm, abr, "MIGRATE 127.0.0.1:1"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("migrate to dead port: %q", got)
	}
	s.mu.Lock()
	serving := s.serving
	s.mu.Unlock()
	if !serving {
		t.Fatal("server stopped serving after failed migration")
	}
	if got := roundTrip(t, adm, abr, "MIGRATE"); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("bad usage: %q", got)
	}
	if got := roundTrip(t, adm, abr, "NOPE"); !strings.HasPrefix(got, "ERR unknown") {
		t.Fatalf("unknown admin: %q", got)
	}
}

func TestDoubleMigrationRefused(t *testing.T) {
	_, _, aAdmin := startServer(t, "sat-A")
	_, bClient, _ := startServer(t, "sat-B")
	adm, err := net.DialTimeout("tcp", aAdmin, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	abr := bufio.NewReader(adm)
	if got := roundTrip(t, adm, abr, "MIGRATE "+bClient); got != "MIGRATED" {
		t.Fatalf("first migration: %q", got)
	}
	if got := roundTrip(t, adm, abr, "MIGRATE "+bClient); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("second migration should fail: %q", got)
	}
}
