package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestExecuteCommands(t *testing.T) {
	s := newServer("sat-T", obs.NewRegistry())
	tests := []struct {
		cmd        string
		wantPrefix string
		wantQuit   bool
	}{
		{"JOIN alice", "WELCOME alice@sat-T", false},
		{"SET score 42", "OK seq=2", false},
		{"GET score", "VALUE 42", false},
		{"GET missing", "MISSING", false},
		{"SET phrase hello world", "OK", false},
		{"GET phrase", "VALUE hello world", false},
		{"SEQ", "SEQ 3", false},
		{"", "ERR", false},
		{"FROB", "ERR unknown", false},
		{"JOIN", "ERR usage", false},
		{"SET only-key", "ERR usage", false},
		{"GET a b", "ERR usage", false},
		{"quit", "BYE", true},
	}
	for _, tc := range tests {
		reply, quit := s.execute(tc.cmd)
		if !strings.HasPrefix(reply, tc.wantPrefix) {
			t.Errorf("execute(%q) = %q, want prefix %q", tc.cmd, reply, tc.wantPrefix)
		}
		if quit != tc.wantQuit {
			t.Errorf("execute(%q) quit = %v", tc.cmd, quit)
		}
	}
}

func TestExecuteAfterMigration(t *testing.T) {
	s := newServer("sat-T", obs.NewRegistry())
	s.mu.Lock()
	s.serving = false
	s.mu.Unlock()
	reply, quit := s.execute("SET k v")
	if reply != "MOVED" || !quit {
		t.Fatalf("drained server replied %q quit=%v, want MOVED/true", reply, quit)
	}
}

// startServer spins up a full meetupd instance on ephemeral ports.
func startServer(t *testing.T, name string) (s *server, clientAddr, adminAddr string) {
	t.Helper()
	s = newServer(name, obs.NewRegistry())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); aln.Close() })
	go s.acceptLoop(ln, "client", s.handleClientOrMigration)
	go s.acceptLoop(aln, "admin", s.handleAdmin)
	return s, ln.Addr().String(), aln.Addr().String()
}

func roundTrip(t *testing.T, conn net.Conn, br *bufio.Reader, cmd string) string {
	t.Helper()
	if _, err := fmt.Fprintln(conn, cmd); err != nil {
		t.Fatal(err)
	}
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}

func TestFullMigrationInProcess(t *testing.T) {
	_, aClient, aAdmin := startServer(t, "sat-A")
	_, bClient, _ := startServer(t, "sat-B")

	// Populate A over a real socket.
	conn, err := net.DialTimeout("tcp", aClient, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if got := roundTrip(t, conn, br, "JOIN p1"); !strings.HasPrefix(got, "WELCOME") {
		t.Fatalf("JOIN: %q", got)
	}
	for i := 0; i < 25; i++ {
		if got := roundTrip(t, conn, br, fmt.Sprintf("SET k%d v%d", i, i)); !strings.HasPrefix(got, "OK") {
			t.Fatalf("SET: %q", got)
		}
	}
	seqA := roundTrip(t, conn, br, "SEQ")

	// Admin: status then migrate.
	adm, err := net.DialTimeout("tcp", aAdmin, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	abr := bufio.NewReader(adm)
	if got := roundTrip(t, adm, abr, "STATUS"); !strings.Contains(got, "serving=true") {
		t.Fatalf("STATUS: %q", got)
	}
	if got := roundTrip(t, adm, abr, "MIGRATE "+bClient); got != "MIGRATED" {
		t.Fatalf("MIGRATE: %q", got)
	}
	// A refuses writes now.
	if got := roundTrip(t, conn, br, "SET late v"); got != "MOVED" {
		t.Fatalf("post-migration write: %q", got)
	}

	// B carries the state.
	bc, err := net.DialTimeout("tcp", bClient, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	bbr := bufio.NewReader(bc)
	if got := roundTrip(t, bc, bbr, "SEQ"); got != seqA {
		t.Fatalf("SEQ after migration: %q, want %q", got, seqA)
	}
	if got := roundTrip(t, bc, bbr, "GET k7"); got != "VALUE v7" {
		t.Fatalf("GET k7: %q", got)
	}
}

func TestMigrateErrors(t *testing.T) {
	s, _, aAdmin := startServer(t, "sat-A")
	adm, err := net.DialTimeout("tcp", aAdmin, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	abr := bufio.NewReader(adm)
	// Unreachable successor: migration fails, server keeps serving.
	if got := roundTrip(t, adm, abr, "MIGRATE 127.0.0.1:1"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("migrate to dead port: %q", got)
	}
	s.mu.Lock()
	serving := s.serving
	s.mu.Unlock()
	if !serving {
		t.Fatal("server stopped serving after failed migration")
	}
	if got := roundTrip(t, adm, abr, "MIGRATE"); !strings.HasPrefix(got, "ERR usage") {
		t.Fatalf("bad usage: %q", got)
	}
	if got := roundTrip(t, adm, abr, "NOPE"); !strings.HasPrefix(got, "ERR unknown") {
		t.Fatalf("unknown admin: %q", got)
	}
}

func TestDoubleMigrationRefused(t *testing.T) {
	_, _, aAdmin := startServer(t, "sat-A")
	_, bClient, _ := startServer(t, "sat-B")
	adm, err := net.DialTimeout("tcp", aAdmin, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	abr := bufio.NewReader(adm)
	if got := roundTrip(t, adm, abr, "MIGRATE "+bClient); got != "MIGRATED" {
		t.Fatalf("first migration: %q", got)
	}
	if got := roundTrip(t, adm, abr, "MIGRATE "+bClient); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("second migration should fail: %q", got)
	}
}

// startFullServer runs a server through run() so shutdown paths are covered.
func startFullServer(t *testing.T, name string) (s *server, clientAddr string, sig chan os.Signal, done chan struct{}) {
	t.Helper()
	s = newServer(name, obs.NewRegistry())
	s.drainTimeout = 2 * time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	aln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig = make(chan os.Signal, 1)
	done = make(chan struct{})
	go func() {
		s.run(ln, aln, sig)
		close(done)
	}()
	return s, ln.Addr().String(), sig, done
}

func TestGracefulShutdownDrains(t *testing.T) {
	_, clientAddr, sig, done := startFullServer(t, "sat-G")

	conn, err := net.DialTimeout("tcp", clientAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if got := roundTrip(t, conn, br, "JOIN p1"); !strings.HasPrefix(got, "WELCOME") {
		t.Fatalf("JOIN: %q", got)
	}

	sig <- os.Interrupt

	// The listener closes: new connections are refused (allow a moment for
	// the accept loop to observe the close).
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", clientAddr, 200*time.Millisecond)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after shutdown signal")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The in-flight connection keeps working mid-drain...
	if got := roundTrip(t, conn, br, "SEQ"); !strings.HasPrefix(got, "SEQ") {
		t.Fatalf("command during drain: %q", got)
	}
	// ...and run() returns only after it finishes.
	select {
	case <-done:
		t.Fatal("run() returned while a connection was still open")
	case <-time.After(50 * time.Millisecond):
	}
	if got := roundTrip(t, conn, br, "QUIT"); got != "BYE" {
		t.Fatalf("QUIT: %q", got)
	}
	conn.Close()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("run() did not return after connections drained")
	}
}

func TestGracefulShutdownTimeout(t *testing.T) {
	s, clientAddr, sig, done := startFullServer(t, "sat-H")
	s.drainTimeout = 100 * time.Millisecond

	// A client that never quits: drain must give up after the timeout.
	conn, err := net.DialTimeout("tcp", clientAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	if got := roundTrip(t, conn, br, "JOIN lingerer"); !strings.HasPrefix(got, "WELCOME") {
		t.Fatalf("JOIN: %q", got)
	}
	sig <- os.Interrupt
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("run() hung past the drain timeout")
	}
}

func TestDebugEndpointMetrics(t *testing.T) {
	s, clientAddr, _ := startServer(t, "sat-M")

	// Generate some traffic so counters move.
	conn, err := net.DialTimeout("tcp", clientAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	roundTrip(t, conn, br, "JOIN alice")
	roundTrip(t, conn, br, "SET k v")
	roundTrip(t, conn, br, "GET k")

	srv := httptest.NewServer(obs.DebugMux(s.reg))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	// Valid Prometheus text exposition with at least 8 distinct families.
	families := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			families[parts[0]] = true
		}
	}
	if len(families) < 8 {
		t.Fatalf("only %d metric families exposed: %v\n%s", len(families), families, text)
	}
	for _, want := range []string{
		`meetupd_commands_total{verb="SET"} 1`,
		`meetupd_connections_total{kind="client"} 1`,
		"meetupd_seq 2",
		"meetupd_state_keys 1",
		"meetupd_state_users 1",
		"meetupd_serving 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// JSON exposition round-trips.
	resp2, err := http.Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap []obs.FamilySnapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatalf("JSON exposition invalid: %v", err)
	}
}

func TestMigrationMetrics(t *testing.T) {
	a, _, aAdmin := startServer(t, "sat-A")
	b, bClient, _ := startServer(t, "sat-B")

	conn, err := net.DialTimeout("tcp", bClient, time.Second) // populate via A? use admin below
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	adm, err := net.DialTimeout("tcp", aAdmin, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	abr := bufio.NewReader(adm)
	if got := roundTrip(t, adm, abr, "MIGRATE "+bClient); got != "MIGRATED" {
		t.Fatalf("MIGRATE: %q", got)
	}

	if got := a.m.migrations.With("out", "ok").Value(); got != 1 {
		t.Fatalf("A migrations out ok = %d, want 1", got)
	}
	if a.m.migBytes.With("out").Value() == 0 {
		t.Fatal("A migrated zero bytes")
	}
	if a.m.serving.Value() != 0 {
		t.Fatal("A serving gauge still 1 after migrating away")
	}
	// B observed the inbound migration; allow the handler goroutine to finish.
	deadline := time.Now().Add(2 * time.Second)
	for b.m.migrations.With("in", "ok").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("B never counted the inbound migration")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if b.m.serving.Value() != 1 {
		t.Fatal("B serving gauge not set after import")
	}
}
