package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/migrate"
	"repro/internal/obs"
)

// TestStalledMigrationDoesNotBlockDrain: a peer that opens a migration,
// sends half a transfer, and goes silent used to pin its handler (and thus
// shutdown) on a blocked read forever. Drain now forces the connection
// deadlines after -draintimeout, so run() still returns.
func TestStalledMigrationDoesNotBlockDrain(t *testing.T) {
	s, clientAddr, sig, done := startFullServer(t, "sat-W")
	s.drainTimeout = 100 * time.Millisecond
	s.ioTimeout = time.Hour // deadlines must come from the forced drain, not the io timeout

	conn, err := net.DialTimeout("tcp", clientAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Start a migration and wedge: handshake plus a partial frame, then silence.
	if _, err := fmt.Fprintln(conn, migrationHandshakeV2); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	if _, err := br.ReadString('\n'); err != nil { // RESUME 0 0
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("IOSM\x01")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the import handler block on the read

	sig <- os.Interrupt
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("run() hung on a wedged migration past the drain timeout")
	}
}

// TestMigrateStalledSuccessorRollsBack: a successor that accepts the
// connection but never speaks must not hang MIGRATE — each attempt times
// out, and after the final retry the server rolls back to serving.
func TestMigrateStalledSuccessorRollsBack(t *testing.T) {
	s := newServer("sat-S", obs.NewRegistry())
	s.ioTimeout = 100 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accept and say nothing
		}
	}()

	start := time.Now()
	if err := s.migrateTo(ln.Addr().String()); err == nil {
		t.Fatal("migration to a mute successor succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("migration took %v to fail — deadlines not armed", elapsed)
	}
	s.mu.Lock()
	serving := s.serving
	s.mu.Unlock()
	if !serving {
		t.Fatal("server did not roll back to serving after the final retry")
	}
	if got := s.m.migrations.With("out", "retry").Value(); got != migrateAttempts {
		t.Fatalf("retry counter = %d, want %d", got, migrateAttempts)
	}
}

// TestMigrationResumeAcrossConnections is the resumable-transfer story end
// to end: attempt 1 dies mid-stream, the receiver keeps the partial bytes,
// and attempt 2 resumes from the offered offsets instead of resending.
func TestMigrationResumeAcrossConnections(t *testing.T) {
	s, clientAddr, _ := startServer(t, "sat-R")
	s.ioTimeout = time.Second

	payload, err := json.Marshal(session{Seq: 42, Values: map[string]string{"k": "v"}, Users: []string{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	half := len(payload) / 2

	// Attempt 1: v2 handshake, half the session state, then the link dies.
	c1, err := net.DialTimeout("tcp", clientAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	br1 := bufio.NewReader(c1)
	if _, err := fmt.Fprintln(c1, migrationHandshakeV2); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, br1); got != "RESUME 0 0" {
		t.Fatalf("fresh resume offer = %q, want RESUME 0 0", got)
	}
	if err := migrate.WriteFrame(c1, migrate.FrameSession, payload[:half]); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// The server notices the dead link and keeps the partial state.
	deadline := time.Now().Add(3 * time.Second)
	for s.m.migrations.With("in", "error").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the failed import")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Attempt 2: the resume offer reflects the received prefix; send the rest.
	c2, err := net.DialTimeout("tcp", clientAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	br2 := bufio.NewReader(c2)
	if _, err := fmt.Fprintln(c2, migrationHandshakeV2); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("RESUME 0 %d", half)
	if got := readLine(t, br2); got != want {
		t.Fatalf("resume offer = %q, want %q", got, want)
	}
	if err := migrate.SendStateResumable(c2, nil, payload, 0, half, 0); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, br2); got != "IMPORTED 42" {
		t.Fatalf("ack = %q, want IMPORTED 42", got)
	}

	s.mu.Lock()
	seq, v, users := s.state.Seq, s.state.Values["k"], len(s.state.Users)
	rx := s.rx
	s.mu.Unlock()
	if seq != 42 || v != "v" || users != 2 {
		t.Fatalf("resumed state wrong: seq=%d k=%q users=%d", seq, v, users)
	}
	if rx != nil {
		t.Fatal("resume buffer not cleared after a completed import")
	}
}

// TestV1MigrationStillAccepted: an old sender using the blind-push v1
// handshake must keep working against the new server.
func TestV1MigrationStillAccepted(t *testing.T) {
	_, clientAddr, _ := startServer(t, "sat-V")

	payload, err := json.Marshal(session{Seq: 7, Values: map[string]string{"x": "y"}})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialTimeout("tcp", clientAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintln(conn, migrationHandshake); err != nil {
		t.Fatal(err)
	}
	if err := migrate.SendState(conn, nil, payload); err != nil {
		t.Fatal(err)
	}
	if got := readLine(t, bufio.NewReader(conn)); got != "IMPORTED 7" {
		t.Fatalf("v1 ack = %q, want IMPORTED 7", got)
	}
}

func readLine(t *testing.T, br *bufio.Reader) string {
	t.Helper()
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(line)
}
