// Command passpredict predicts satellite passes over a ground site: AOS,
// culmination, LOS, duration, and peak Doppler — the classic satellite-ops
// view, over any of the preset constellations or a single satellite.
//
// Usage:
//
//	passpredict -lat 47.38 -lon 8.54 -name starlink -sat 0 -hours 3
//	passpredict -lat 9.06 -lon 7.49 -name kuiper -next
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/plot"
	"repro/internal/visibility"
)

func main() {
	var (
		lat   = flag.Float64("lat", 47.38, "site latitude (degrees north)")
		lon   = flag.Float64("lon", 8.54, "site longitude (degrees east)")
		name  = flag.String("name", "starlink", "constellation: starlink, kuiper, telesat")
		sat   = flag.Int("sat", 0, "satellite ID to predict passes for")
		hours = flag.Float64("hours", 3, "prediction horizon")
		next  = flag.Bool("next", false, "just report the next pass of any satellite")
	)
	flag.Parse()

	site := geo.LatLon{LatDeg: *lat, LonDeg: *lon}
	if !site.Valid() {
		fatal(fmt.Errorf("invalid site %v", site))
	}
	var (
		c   *constellation.Constellation
		err error
	)
	switch *name {
	case "starlink":
		c, err = constellation.StarlinkPhase1(constellation.Config{})
	case "kuiper":
		c, err = constellation.Kuiper(constellation.Config{})
	case "telesat":
		c, err = constellation.Telesat(constellation.Config{})
	default:
		err = fmt.Errorf("unknown constellation %q", *name)
	}
	if err != nil {
		fatal(err)
	}
	obs := visibility.NewObserver(c)
	ground := site.ECEF()
	horizon := *hours * 3600

	if *next {
		w, ok, err := obs.NextPassAny(ground, 0, horizon, 10)
		if err != nil {
			fatal(err)
		}
		if !ok {
			fmt.Printf("no pass over %v within %.1f h\n", site, *hours)
			return
		}
		fmt.Printf("next pass over %v: %s (sat %d)\n", site, c.Satellites[w.SatID].Name(c.Shells), w.SatID)
		printPasses(c, obs, ground, []visibility.PassWindow{w})
		return
	}

	if *sat < 0 || *sat >= c.Size() {
		fatal(fmt.Errorf("satellite %d out of [0,%d)", *sat, c.Size()))
	}
	ws, err := obs.PassWindows(ground, *sat, 0, horizon, 10)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s over %v, next %.1f h: %d passes\n",
		c.Satellites[*sat].Name(c.Shells), site, *hours, len(ws))
	printPasses(c, obs, ground, ws)
}

func printPasses(c *constellation.Constellation, obs *visibility.Observer, ground geo.Vec3, ws []visibility.PassWindow) {
	const kaHz = 20e9
	var rows [][]string
	for _, w := range ws {
		dop, err := obs.DopplerShiftHz(ground, w.SatID, w.AOSSec+1, kaHz)
		if err != nil {
			dop = 0
		}
		rows = append(rows, []string{
			hms(w.AOSSec),
			hms(w.MaxElevationSec),
			hms(w.LOSSec),
			fmt.Sprintf("%.0f s", w.DurationSec()),
			fmt.Sprintf("%.1f°", w.MaxElevationDeg),
			fmt.Sprintf("%+.0f kHz", dop/1000),
		})
	}
	if err := plot.Table(os.Stdout, []string{"AOS", "culmination", "LOS", "duration", "max elev", "AOS Doppler @20GHz"}, rows); err != nil {
		fatal(err)
	}
}

func hms(t float64) string {
	s := int(t)
	return fmt.Sprintf("%02d:%02d:%02d", s/3600, (s/60)%60, s%60)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "passpredict:", err)
	os.Exit(1)
}
