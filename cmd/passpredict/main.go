// Command passpredict predicts satellite passes over a ground site: AOS,
// culmination, LOS, duration, and peak Doppler — the classic satellite-ops
// view, over any of the preset constellations or a single satellite.
//
// Usage:
//
//	passpredict -lat 47.38 -lon 8.54 -name starlink -sat 0 -hours 3
//	passpredict -lat 9.06 -lon 7.49 -name kuiper -next
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/plot"
	"repro/internal/visibility"
)

type options struct {
	site  geo.LatLon
	name  string
	sat   int
	hours float64
	next  bool
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("passpredict", flag.ContinueOnError)
	var o options
	fs.Float64Var(&o.site.LatDeg, "lat", 47.38, "site latitude (degrees north)")
	fs.Float64Var(&o.site.LonDeg, "lon", 8.54, "site longitude (degrees east)")
	fs.StringVar(&o.name, "name", "starlink", "constellation: starlink, kuiper, telesat")
	fs.IntVar(&o.sat, "sat", 0, "satellite ID to predict passes for")
	fs.Float64Var(&o.hours, "hours", 3, "prediction horizon")
	fs.BoolVar(&o.next, "next", false, "just report the next pass of any satellite")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if !o.site.Valid() {
		return o, fmt.Errorf("invalid site %v", o.site)
	}
	if o.hours <= 0 {
		return o, fmt.Errorf("hours %v must be positive", o.hours)
	}
	return o, nil
}

func buildNamed(name string) (*constellation.Constellation, error) {
	switch name {
	case "starlink":
		return constellation.StarlinkPhase1(constellation.Config{})
	case "kuiper":
		return constellation.Kuiper(constellation.Config{})
	case "telesat":
		return constellation.Telesat(constellation.Config{})
	}
	return nil, fmt.Errorf("unknown constellation %q (want starlink, kuiper, telesat)", name)
}

func run(out io.Writer, o options) error {
	c, err := buildNamed(o.name)
	if err != nil {
		return err
	}
	obs := visibility.NewObserver(c)
	ground := o.site.ECEF()
	horizon := o.hours * 3600

	if o.next {
		w, ok, err := obs.NextPassAny(ground, 0, horizon, 10)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Fprintf(out, "no pass over %v within %.1f h\n", o.site, o.hours)
			return nil
		}
		fmt.Fprintf(out, "next pass over %v: %s (sat %d)\n", o.site, c.Satellites[w.SatID].Name(c.Shells), w.SatID)
		return printPasses(out, c, obs, ground, []visibility.PassWindow{w})
	}

	if o.sat < 0 || o.sat >= c.Size() {
		return fmt.Errorf("satellite %d out of [0,%d)", o.sat, c.Size())
	}
	ws, err := obs.PassWindows(ground, o.sat, 0, horizon, 10)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s over %v, next %.1f h: %d passes\n",
		c.Satellites[o.sat].Name(c.Shells), o.site, o.hours, len(ws))
	return printPasses(out, c, obs, ground, ws)
}

func printPasses(out io.Writer, c *constellation.Constellation, obs *visibility.Observer, ground geo.Vec3, ws []visibility.PassWindow) error {
	const kaHz = 20e9
	var rows [][]string
	for _, w := range ws {
		dop, err := obs.DopplerShiftHz(ground, w.SatID, w.AOSSec+1, kaHz)
		if err != nil {
			dop = 0
		}
		rows = append(rows, []string{
			hms(w.AOSSec),
			hms(w.MaxElevationSec),
			hms(w.LOSSec),
			fmt.Sprintf("%.0f s", w.DurationSec()),
			fmt.Sprintf("%.1f°", w.MaxElevationDeg),
			fmt.Sprintf("%+.0f kHz", dop/1000),
		})
	}
	return plot.Table(out, []string{"AOS", "culmination", "LOS", "duration", "max elev", "AOS Doppler @20GHz"}, rows)
}

func hms(t float64) string {
	s := int(t)
	return fmt.Sprintf("%02d:%02d:%02d", s/3600, (s/60)%60, s%60)
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fatal(err)
	}
	if err := run(os.Stdout, o); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "passpredict:", err)
	os.Exit(1)
}
