package main

import (
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-lat", "9.06", "-lon", "7.49", "-name", "kuiper", "-next"})
	if err != nil {
		t.Fatal(err)
	}
	if o.site.LatDeg != 9.06 || o.site.LonDeg != 7.49 || o.name != "kuiper" || !o.next {
		t.Fatalf("parsed %+v", o)
	}
	for _, args := range [][]string{
		{"-lat", "91"},
		{"-lon", "181"},
		{"-hours", "0"},
		{"-nope"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestBuildNamed(t *testing.T) {
	for _, name := range []string{"starlink", "kuiper", "telesat"} {
		c, err := buildNamed(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Size() == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
	if _, err := buildNamed("atlantis"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestRunSingleSatellite(t *testing.T) {
	o, err := parseFlags([]string{"-name", "telesat", "-lat", "47.38", "-lon", "8.54", "-sat", "0", "-hours", "3"})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "next 3.0 h:") {
		t.Fatalf("missing pass summary:\n%s", out)
	}
	if !strings.Contains(out, "AOS") || !strings.Contains(out, "culmination") {
		t.Fatalf("missing pass table header:\n%s", out)
	}

	o.sat = 99999
	if err := run(&b, o); err == nil {
		t.Fatal("out-of-range satellite accepted")
	}
}

func TestRunNextPass(t *testing.T) {
	o, err := parseFlags([]string{"-name", "telesat", "-lat", "47.38", "-lon", "8.54", "-next", "-hours", "1"})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// A 1,671-satellite constellation always has a pass within the hour.
	if !strings.Contains(out, "next pass over") {
		t.Fatalf("missing next-pass line:\n%s", out)
	}
	if !strings.Contains(out, "duration") {
		t.Fatalf("missing pass table:\n%s", out)
	}
}
