// Command migrateclient drives a meetupd pair through a live migration and
// verifies no state is lost: it writes session state to server A, orders A
// to migrate to server B, then reads the state back from B.
//
// Usage (with two meetupd instances already running):
//
//	meetupd -name sat-A -listen :7070 -admin :7071 &
//	meetupd -name sat-B -listen :7080 -admin :7081 &
//	migrateclient -a 127.0.0.1:7070 -a-admin 127.0.0.1:7071 -b 127.0.0.1:7080
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"
)

func main() {
	var (
		a      = flag.String("a", "127.0.0.1:7070", "server A client address")
		aAdmin = flag.String("a-admin", "127.0.0.1:7071", "server A admin address")
		b      = flag.String("b", "127.0.0.1:7080", "server B client address")
		keys   = flag.Int("keys", 100, "how many keys to write before migrating")
	)
	flag.DurationVar(&ioTimeout, "timeout", 30*time.Second, "per-operation socket deadline (0 = none)")
	flag.Parse()

	// Phase 1: populate server A.
	ca := dial(*a)
	defer ca.Close()
	expect(ca, "JOIN alice", "WELCOME")
	for i := 0; i < *keys; i++ {
		expect(ca, fmt.Sprintf("SET key%04d value-%d", i, i*i), "OK")
	}
	seqA := query(ca, "SEQ")
	log.Printf("populated A: %s", seqA)

	// Phase 2: order the migration.
	start := time.Now()
	adm := dial(*aAdmin)
	defer adm.Close()
	reply := query(adm, "MIGRATE "+*b)
	if reply != "MIGRATED" {
		log.Fatalf("migration failed: %s", reply)
	}
	log.Printf("migration completed in %v", time.Since(start))

	// Phase 3: verify on server B.
	cb := dial(*b)
	defer cb.Close()
	seqB := query(cb, "SEQ")
	if seqA != seqB {
		log.Fatalf("sequence mismatch after migration: A=%s B=%s", seqA, seqB)
	}
	for i := 0; i < *keys; i += 13 {
		got := query(cb, fmt.Sprintf("GET key%04d", i))
		want := fmt.Sprintf("VALUE value-%d", i*i)
		if got != want {
			log.Fatalf("key%04d: got %q, want %q", i, got, want)
		}
	}
	// Server A must refuse further writes.
	if got := query(ca, "SET late value"); got != "MOVED" {
		log.Fatalf("server A still serving after migration: %q", got)
	}
	fmt.Printf("migration verified: %d keys intact, %s carried to successor\n", *keys, seqB)
}

// ioTimeout is the per-operation socket deadline; a stalled or wedged
// server fails the run instead of hanging it forever.
var ioTimeout = 30 * time.Second

// client couples a connection with buffered IO so replies can be matched
// to commands.
type client struct {
	conn net.Conn
	*bufio.ReadWriter
}

func (c *client) Close() error { return c.conn.Close() }

// arm sets the connection deadline for the next operation.
func (c *client) arm() {
	if ioTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(ioTimeout))
	}
}

func dial(addr string) *client {
	conn, err := net.DialTimeout("tcp", addr, ioTimeout)
	if err != nil {
		log.Fatalf("dial %s: %v", addr, err)
	}
	return &client{conn: conn, ReadWriter: bufio.NewReadWriter(bufio.NewReader(conn), bufio.NewWriter(conn))}
}

func query(rw *client, cmd string) string {
	rw.arm()
	if _, err := rw.WriteString(cmd + "\n"); err != nil {
		log.Fatalf("write %q: %v", cmd, err)
	}
	if err := rw.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	rw.arm()
	line, err := rw.ReadString('\n')
	if err != nil {
		log.Fatalf("read reply to %q: %v", cmd, err)
	}
	return strings.TrimSpace(line)
}

func expect(rw *client, cmd, prefix string) {
	if got := query(rw, cmd); !strings.HasPrefix(got, prefix) {
		log.Fatalf("%q: got %q, want prefix %q", cmd, got, prefix)
	}
}
