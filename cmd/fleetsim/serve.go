package main

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/compute"
	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/serve"
	"repro/internal/stats"
)

// serveOptions is the -serve-* flag family: the request-serving layer
// driven alongside the fleet control plane. Everything here is simulated
// (no wall-clock quantities), so the serve report is byte-identical per
// seed and safe to diff across runs.
type serveOptions struct {
	rate      float64 // aggregate request arrivals per second (0 = off unless replaying)
	policy    string  // nearest, least-loaded, sticky, or all
	sites     int     // request sites = top-N cities
	serviceMs float64 // lognormal median service time
	sigma     float64 // lognormal shape
	diurnal   float64 // diurnal rate amplitude in [0,1)
	cores     int     // request cores per satellite-server
	queue     int     // per-satellite queue bound beyond the cores (-1 = unbounded)
	seed      int64   // workload seed (independent of the fleet seed)
	tracePath string  // write the generated trace as JSONL
	replay    string  // replay a JSONL trace instead of generating
	availSLO  float64 // served/offered availability objective per policy
	workers   int     // engine worker fan-out (0 = adaptive, 1 = serial, N = forced)
}

// enabled reports whether the serving layer runs at all.
func (so serveOptions) enabled() bool { return so.rate > 0 || so.replay != "" }

func (so serveOptions) validate() error {
	if !so.enabled() {
		return nil
	}
	if so.rate < 0 {
		return fmt.Errorf("serve-rate %v must be non-negative", so.rate)
	}
	if so.sites <= 0 {
		return fmt.Errorf("serve-sites %d must be positive", so.sites)
	}
	if so.serviceMs <= 0 {
		return fmt.Errorf("serve-service-ms %v must be positive", so.serviceMs)
	}
	if so.sigma < 0 {
		return fmt.Errorf("serve-sigma %v must be non-negative", so.sigma)
	}
	if so.diurnal < 0 || so.diurnal >= 1 {
		return fmt.Errorf("serve-diurnal %v outside [0,1)", so.diurnal)
	}
	if so.cores <= 0 {
		return fmt.Errorf("serve-cores %d must be positive", so.cores)
	}
	if so.availSLO <= 0 || so.availSLO > 1 {
		return fmt.Errorf("slo-serve-avail %v outside (0,1]", so.availSLO)
	}
	if so.workers < 0 {
		return fmt.Errorf("serve-workers %d must be non-negative", so.workers)
	}
	if _, err := so.policies(); err != nil {
		return err
	}
	return nil
}

// policies resolves the -serve-policy flag ("all" compares the built-ins).
func (so serveOptions) policies() ([]serve.Policy, error) {
	if so.policy == "all" || so.policy == "" {
		return serve.Policies(), nil
	}
	p, err := serve.ByName(so.policy)
	if err != nil {
		return nil, err
	}
	return []serve.Policy{p}, nil
}

// serveRun is one engine per compared policy, all fed the same trace and
// advanced in lockstep with the fleet epochs.
type serveRun struct {
	engines []*serve.Engine
	offered int
}

// newServeRun builds the per-policy engines over the shared ephemeris
// engine. Under chaos each engine gets its own fault injector from the
// same seed, so every policy faces the identical failure schedule.
func newServeRun(o options, c *constellation.Constellation, reg *obs.Registry,
	eng *ephem.Engine, horizonSec float64, out io.Writer) (*serveRun, error) {
	so := o.serve
	sites := serve.SitesFromCities(so.sites)

	var reqs []serve.Request
	if so.replay != "" {
		f, err := os.Open(so.replay)
		if err != nil {
			return nil, err
		}
		reqs, err = serve.ReadTrace(bufio.NewReader(f))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "serve: replaying %d requests from %s\n", len(reqs), so.replay)
	} else {
		var err error
		reqs, err = serve.Generate(sites, serve.Workload{
			Seed:             so.seed,
			RatePerSec:       so.rate,
			ServiceMedianMs:  so.serviceMs,
			ServiceSigma:     so.sigma,
			DiurnalAmplitude: so.diurnal,
		}, horizonSec)
		if err != nil {
			return nil, err
		}
	}
	if so.tracePath != "" {
		f, err := os.Create(so.tracePath)
		if err != nil {
			return nil, err
		}
		w := bufio.NewWriter(f)
		err = serve.WriteTrace(w, reqs)
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(out, "serve: trace written to %s\n", so.tracePath)
	}

	policies, err := so.policies()
	if err != nil {
		return nil, err
	}
	server := compute.DefaultServerSpec()
	server.Cores = so.cores
	sr := &serveRun{offered: len(reqs)}
	for _, p := range policies {
		var inj *faults.Injector
		if o.chaosEnabled() {
			inj, err = faults.New(c.Size(), faults.Config{
				Seed:              o.faultSeed,
				SatMTBFHours:      o.satMTBFHr,
				SatMTTRSec:        o.satMTTRSec,
				ISLFlapPerHour:    o.islFlapHr,
				MigrationFailProb: o.migFail,
			})
			if err != nil {
				return nil, err
			}
		}
		e, err := serve.NewEngine(c, serve.Config{
			Sites:      sites,
			Policy:     p,
			Server:     server,
			QueueCap:   so.queue,
			RefreshSec: o.stepSec,
			Workers:    so.workers,
			Registry:   reg,
			Faults:     inj,
			Ephem:      eng,
		})
		if err != nil {
			return nil, err
		}
		if err := e.Feed(reqs); err != nil {
			return nil, err
		}
		sr.engines = append(sr.engines, e)
	}
	return sr, nil
}

// advance runs every policy engine up to the fleet's current epoch time,
// so timeline frames capture the serve counters in lockstep.
func (sr *serveRun) advance(tSec float64) {
	for _, e := range sr.engines {
		e.RunUntil(tSec)
	}
}

// engineLine summarises the sharded engine's execution shape — worker
// fan-out and slice modes — aggregated across the compared policies. This
// is a how-it-ran quantity, not a simulated one, so it belongs in the
// fleet report: the serve-report tail stays byte-identical across
// -serve-workers settings.
func (sr *serveRun) engineLine() string {
	workers := 0
	par, ser := 0, 0
	for _, e := range sr.engines {
		st := e.Stats()
		if st.Workers > workers {
			workers = st.Workers
		}
		par += st.ParallelSlices
		ser += st.SerialSlices
	}
	return fmt.Sprintf("%d workers (%d parallel / %d serial slices)", workers, par, ser)
}

// slos builds one availability objective per compared policy.
func (sr *serveRun) slos(objective float64) []obs.SLO {
	out := make([]obs.SLO, 0, len(sr.engines))
	for _, e := range sr.engines {
		name := e.Result().Policy
		out = append(out, obs.SLO{
			Name:        fmt.Sprintf("serve %s avail >= %.1f%%", name, 100*objective),
			Kind:        obs.SLORatio,
			Metric:      "serve_served_total",
			TotalMetric: "serve_requests_total",
			Labels:      map[string]string{"policy": name},
			Objective:   objective,
		})
	}
	return out
}

// serveReport prints the per-policy serving summary: request latency
// quantiles, shedding by reason, and how the load spread over the
// satellite-servers. Simulated quantities only — diffable across runs.
func serveReport(out io.Writer, sr *serveRun) error {
	fmt.Fprintf(out, "\nserve report — %d requests offered per policy\n", sr.offered)
	header := []string{"policy", "served", "shed", "p50 ms", "p99 ms", "sats", "util p50", "util max", "peak q"}
	rows := make([][]string, 0, len(sr.engines))
	for _, e := range sr.engines {
		r := e.Result()
		var p50, p99 float64
		if r.LatencyMs.N() > 0 {
			p50 = r.LatencyMs.Median()
			p99 = r.LatencyMs.Quantile(0.99)
		}
		busy := make([]float64, 0, r.SatsUsed)
		for _, u := range r.Utilization {
			if u > 0 {
				busy = append(busy, u)
			}
		}
		util := stats.NewCDF(busy...)
		var utilP50, utilMax float64
		if util.N() > 0 {
			utilP50 = util.Median()
			utilMax = util.Max()
		}
		rows = append(rows, []string{
			r.Policy,
			fmt.Sprintf("%d", r.Served),
			shedLine(r),
			fmt.Sprintf("%.2f", p50),
			fmt.Sprintf("%.2f", p99),
			fmt.Sprintf("%d", r.SatsUsed),
			fmt.Sprintf("%.1f%%", 100*utilP50),
			fmt.Sprintf("%.1f%%", 100*utilMax),
			fmt.Sprintf("%d", r.PeakQueued),
		})
	}
	return plot.Table(out, header, rows)
}

// shedLine compacts the shed accounting: total, with per-reason detail when
// any request was dropped.
func shedLine(r serve.Result) string {
	total := r.ShedTotal()
	if total == 0 {
		return "0"
	}
	s := fmt.Sprintf("%d (", total)
	first := true
	for _, reason := range serve.ShedReasons {
		if n := r.Shed[reason]; n > 0 {
			if !first {
				s += ", "
			}
			s += fmt.Sprintf("%s %d", reason, n)
			first = false
		}
	}
	return s + ")"
}
