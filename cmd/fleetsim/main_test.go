package main

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-sessions", "42", "-hours", "0.25", "-name", "telesat", "-churn", "0"})
	if err != nil {
		t.Fatal(err)
	}
	if o.sessions != 42 || o.hours != 0.25 || o.name != "telesat" || o.churn != 0 {
		t.Fatalf("parsed %+v", o)
	}

	bad := [][]string{
		{"-sessions", "0"},
		{"-hours", "-1"},
		{"-minusers", "0"},
		{"-minusers", "5", "-maxusers", "2"},
		{"-churn", "-1"},
		{"-dwell", "0"},
		{"-demand", "0"},
		{"-demand", "-0.5"},
		{"-shards", "-1"},
		{"-serve-rate", "10", "-serve-workers", "-1"},
		{"-nope"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestBuildNamed(t *testing.T) {
	for _, name := range []string{"starlink", "kuiper", "telesat"} {
		c, err := buildNamed(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Size() == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
	if _, err := buildNamed("atlantis"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestBuildWorkloadSeeded(t *testing.T) {
	o, err := parseFlags([]string{"-sessions", "20", "-churn", "0.01", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	p1, c1, err := buildWorkload(o, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 20 {
		t.Fatalf("persistent = %d, want 20", len(p1))
	}
	p2, c2, err := buildWorkload(o, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2) != len(p1) || len(c2) != len(c1) {
		t.Fatalf("same seed produced different population sizes")
	}
	for i := range p1 {
		if p1[i].ID != p2[i].ID || p1[i].StateMB != p2[i].StateMB || p1[i].Centroid != p2[i].Centroid {
			t.Fatalf("session %d differs between same-seed builds", i)
		}
	}
	for i := range c1 {
		if c1[i].at != c2[i].at || c1[i].sess.ExpiresAt != c2[i].sess.ExpiresAt {
			t.Fatalf("churn arrival %d differs between same-seed builds", i)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	o, err := parseFlags([]string{
		"-name", "telesat", "-sessions", "50", "-hours", "0.05", "-step", "60", "-churn", "0",
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Telesat: 1671 satellites — 50 sessions",
		"fleet report — 3 epochs",
		"sessions (final / peak)",
		"hand-offs",
		"placement latency",
		"satellites loaded",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	path := t.TempDir() + "/fleet.csv"
	o, err := parseFlags([]string{
		"-sessions", "10", "-hours", "0.05", "-step", "60", "-churn", "0", "-csv", path,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 4 { // header + 3 epochs
		t.Fatalf("csv has %d lines, want 4:\n%s", len(lines), data)
	}
	if lines[0] != "x,sessions,assigned,placements,handoffs,rejections,departures,mean_util" {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestParseFaultFlags(t *testing.T) {
	o, err := parseFlags([]string{"-fault-seed", "9", "-sat-mtbf", "100", "-sat-mttr", "-1", "-isl-flap", "2", "-mig-fail", "0.1"})
	if err != nil {
		t.Fatal(err)
	}
	if o.faultSeed != 9 || o.satMTBFHr != 100 || o.satMTTRSec != -1 || o.islFlapHr != 2 || o.migFail != 0.1 {
		t.Fatalf("parsed %+v", o)
	}
	if !o.chaosEnabled() {
		t.Fatal("chaos not enabled with nonzero fault rates")
	}
	if o2, err := parseFlags(nil); err != nil || o2.chaosEnabled() {
		t.Fatalf("chaos enabled by default (err=%v)", err)
	}
	bad := [][]string{
		{"-sat-mtbf", "-1"},
		{"-isl-flap", "-0.5"},
		{"-mig-fail", "-0.1"},
		{"-mig-fail", "1"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestRunChaosDeterministic is the reproducibility contract: two runs with
// the same -fault-seed produce byte-identical CSVs (with the extra chaos
// columns) and a chaos report section in the text output.
func TestRunChaosDeterministic(t *testing.T) {
	runOnce := func(path string) string {
		o, err := parseFlags([]string{
			"-name", "telesat", "-sessions", "30", "-hours", "0.1", "-step", "60", "-churn", "0",
			"-fault-seed", "5", "-sat-mtbf", "0.5", "-sat-mttr", "-1", "-isl-flap", "5", "-mig-fail", "0.3",
			"-csv", path,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := run(&b, o); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	dir := t.TempDir()
	out1 := runOnce(dir + "/a.csv")
	runOnce(dir + "/b.csv")

	a, err := os.ReadFile(dir + "/a.csv")
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dir + "/b.csv")
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("same-seed runs produced different CSVs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	header := strings.SplitN(string(a), "\n", 2)[0]
	if header != "x,sessions,assigned,placements,handoffs,rejections,departures,mean_util,down_sats,evacuations,fault_events" {
		t.Fatalf("chaos csv header = %q", header)
	}
	for _, want := range []string{
		"chaos report — injected faults and how the fleet absorbed them",
		"satellite failures",
		"assigned fraction",
	} {
		if !strings.Contains(out1, want) {
			t.Fatalf("chaos run output missing %q:\n%s", want, out1)
		}
	}
}

// goldenFlags is the fixed scenario behind testdata/telesat_*.csv: a
// churn-heavy quarter-hour telesat run whose per-epoch decisions were
// captured before the planner was sharded and streamed. chaos adds the
// fault-injection flags of the chaos golden.
func goldenFlags(chaos bool, extra ...string) []string {
	args := []string{
		"-name", "telesat", "-sessions", "300", "-hours", "0.25", "-churn", "20", "-seed", "7",
	}
	if chaos {
		args = append(args, "-sat-mtbf", "40", "-sat-mttr", "300", "-mig-fail", "0.05", "-isl-flap", "0.5")
	}
	return append(args, extra...)
}

func runCSV(t *testing.T, args []string) string {
	t.Helper()
	path := t.TempDir() + "/run.csv"
	o, err := parseFlags(append(args, "-csv", path))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRunGolden pins the planner's decisions to CSVs captured from the
// pre-sharding implementation: refactors of the epoch planner must not
// change a single placement, hand-off, or rejection on a fixed seed.
func TestRunGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs simulate 15 epochs of telesat")
	}
	for _, tc := range []struct {
		name   string
		chaos  bool
		golden string
	}{
		{"plain", false, "testdata/telesat_plain.csv"},
		{"chaos", true, "testdata/telesat_chaos.csv"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatal(err)
			}
			if got := runCSV(t, goldenFlags(tc.chaos)); got != string(want) {
				t.Fatalf("CSV diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", tc.golden, got, want)
			}
		})
	}
}

// TestServeWorkersInvariance: the serve engine's worker fan-out must never
// change a simulated quantity. The serve-report tail (everything from
// "serve report" on) is byte-identical across -serve-workers settings;
// only the fleet report's "serve engine" row records the execution shape.
func TestServeWorkersInvariance(t *testing.T) {
	runServe := func(workers string) string {
		o, err := parseFlags([]string{
			"-name", "telesat", "-sessions", "20", "-hours", "0.05", "-step", "60", "-churn", "0",
			"-serve-rate", "40", "-serve-sites", "6", "-serve-cores", "2", "-serve-queue", "4",
			"-serve-workers", workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := run(&b, o); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	tail := func(out string) string {
		i := strings.Index(out, "serve report")
		if i < 0 {
			t.Fatalf("output missing serve report:\n%s", out)
		}
		return out[i:]
	}
	serial := runServe("1")
	if !strings.Contains(serial, "serve engine") {
		t.Fatalf("fleet report missing serve engine row:\n%s", serial)
	}
	want := tail(serial)
	for _, w := range []string{"0", "8"} {
		if got := tail(runServe(w)); got != want {
			t.Fatalf("-serve-workers %s changed the serve report:\n--- got ---\n%s\n--- want ---\n%s", w, got, want)
		}
	}
}

// TestRunShardInvariance: the planner's footprint-region shard count must
// never change its decisions — every -shards value reproduces the golden
// CSV byte for byte.
func TestRunShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("invariance runs simulate 15 epochs of telesat per shard count")
	}
	want, err := os.ReadFile("testdata/telesat_plain.csv")
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 16} {
		if got := runCSV(t, goldenFlags(false, "-shards", fmt.Sprint(shards))); got != string(want) {
			t.Fatalf("-shards %d diverged from golden CSV:\n%s", shards, got)
		}
	}
}

// TestRunGOMAXPROCSInvariance: worker parallelism must never change the
// planner's decisions — the golden CSV reproduces under 1, 2, and 8 procs.
func TestRunGOMAXPROCSInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("invariance runs simulate 15 epochs of telesat per GOMAXPROCS")
	}
	want, err := os.ReadFile("testdata/telesat_plain.csv")
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		if got := runCSV(t, goldenFlags(false)); got != string(want) {
			t.Fatalf("GOMAXPROCS=%d diverged from golden CSV:\n%s", procs, got)
		}
	}
}
