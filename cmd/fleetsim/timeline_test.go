package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTimelineFlagParsing(t *testing.T) {
	cases := []struct {
		flag string
		want float64 // resolved cadence at the default 60s step; 0 = off
	}{
		{"auto", 60},
		{"off", 0},
		{"30", 30},
		{"2.5", 2.5},
	}
	for _, c := range cases {
		o, err := parseFlags([]string{"-timeline", c.flag})
		if err != nil {
			t.Fatalf("-timeline %s rejected: %v", c.flag, err)
		}
		got, err := o.timelineCadence()
		if err != nil || got != c.want {
			t.Errorf("-timeline %s: cadence %g (err %v), want %g", c.flag, got, err, c.want)
		}
	}
	for _, bad := range [][]string{
		{"-timeline", "sometimes"},
		{"-timeline", "-5"},
		{"-timeline-cap", "0"},
		{"-slo-avail", "0"},
		{"-slo-avail", "1.5"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("args %v accepted", bad)
		}
	}
}

func TestSLOFlagObjectives(t *testing.T) {
	o, err := parseFlags([]string{"-slo-replan-ms", "25", "-slo-avail", "0.95"})
	if err != nil {
		t.Fatal(err)
	}
	slos := o.slos()
	if len(slos) != 3 {
		t.Fatalf("%d SLOs, want 3", len(slos))
	}
	byMetric := map[string]obs.SLO{}
	for _, s := range slos {
		byMetric[s.Metric] = s
	}
	if s := byMetric["fleet_replan_ms"]; s.Objective != 25 || s.Kind != obs.SLOLatency {
		t.Errorf("replan SLO = %+v", s)
	}
	if s := byMetric["fleet_sessions_assigned"]; s.Objective != 0.95 || s.Kind != obs.SLORatio ||
		s.TotalMetric != "fleet_sessions" {
		t.Errorf("availability SLO = %+v", s)
	}
}

// TestRunTimelineExport runs a tiny simulation end to end and checks the
// flight-recorder artifacts: the report's SLO section, a readable JSONL
// export, and the HTML report.
func TestRunTimelineExport(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "tl.jsonl")
	html := filepath.Join(dir, "tl.html")
	o, err := parseFlags([]string{
		"-name", "telesat", "-sessions", "50", "-hours", "0.1", "-churn", "0",
		"-timeline-out", jsonl, "-timeline-html", html,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"flight recorder", "SLO report", "p99 replan", "availability"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q", want)
		}
	}

	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	frames, err := obs.ReadFramesJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if want := int(o.hours * 3600 / o.stepSec); len(frames) != want {
		t.Errorf("exported %d frames, want one per epoch (%d)", len(frames), want)
	}
	if _, ok := frameSeries(frames, "fleet_replan_ms"); !ok {
		t.Error("export missing the replan quantile series")
	}

	page, err := os.ReadFile(html)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "<svg") {
		t.Error("HTML report has no charts")
	}
}

// frameSeries reports whether any frame carries the named series.
func frameSeries(frames []obs.Frame, name string) (obs.Point, bool) {
	for _, fr := range frames {
		for _, p := range fr.Points {
			if p.Name == name {
				return p, true
			}
		}
	}
	return obs.Point{}, false
}

func TestRunTimelineOff(t *testing.T) {
	o, err := parseFlags([]string{
		"-name", "telesat", "-sessions", "20", "-hours", "0.05", "-churn", "0", "-timeline", "off",
	})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "flight recorder") || strings.Contains(out.String(), "SLO report") {
		t.Error("-timeline=off still printed recorder sections")
	}
}
