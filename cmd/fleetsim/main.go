// Command fleetsim exercises the fleet-scale control plane: it generates
// city-weighted session groups, runs the epoch-batched orchestrator over a
// multi-hour simulated window on a full constellation, and reports
// placement latency, hand-off rate, rejections, and the satellite load
// distribution — the paper's compute-as-a-service story at fleet scale.
//
// Usage:
//
//	fleetsim -name starlink -sessions 100000 -hours 2
//	fleetsim -sessions 5000 -hours 0.5 -csv fleet.csv -debug 127.0.0.1:8090
//	fleetsim -sessions 5000 -hours 2 -fault-seed 7 -sat-mtbf 100 -isl-flap 0.5
//	fleetsim -sessions 5000 -hours 1 -serve-rate 2000 -serve-policy all
//
// With -serve-rate (or -serve-replay) set, the request-serving layer
// (internal/serve) drives a city-weighted request load against the
// constellation alongside the session control plane, comparing routing
// policies and reporting p50/p99 end-to-end request latency, shedding by
// reason, and per-satellite utilization in a final serve report.
//
// With -sat-mtbf, -isl-flap, or -mig-fail set, a seeded chaos layer
// (internal/faults) injects satellite hard failures, ISL degradation
// windows, and migration transfer failures, and the report gains a chaos
// section accounting for every evacuation, retry, and rejection.
//
// Everything that shapes the simulation is seeded, so a given flag set
// (including -fault-seed) reproduces the same placements, hand-offs,
// faults, and CSV bit-for-bit; only the wall-clock latency figures vary
// between runs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"

	"repro/internal/constellation"
	"repro/internal/ephem"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/trace"
)

type options struct {
	name     string
	sessions int
	hours    float64
	stepSec  float64
	seed     int64
	spreadKm float64
	minUsers int
	maxUsers int
	churn    float64 // extra transient arrivals per second
	dwellSec float64 // mean lifetime of transient sessions
	demand   float64 // per-session cores demand
	shards   int     // planner footprint-region shards (0 = auto)
	csvPath  string
	debug    string
	progress bool

	timeline     string  // "auto", "off", or sim-second cadence
	timelineOut  string  // JSONL export path
	timelineHTML string  // HTML report path
	timelineCap  int     // ring capacity in frames
	sloReplanMs  float64 // p99 replan latency objective
	sloXferMs    float64 // p99 transfer latency objective
	sloAvail     float64 // session-availability ratio objective

	faultSeed  int64
	satMTBFHr  float64 // mean time between satellite hard failures (0 = off)
	satMTTRSec float64 // mean recovery time (negative = permanent)
	islFlapHr  float64 // per-pair ISL degradation windows per hour
	migFail    float64 // per-attempt migration transfer failure probability

	serve serveOptions // -serve-* request-serving layer
}

// chaosEnabled reports whether any fault channel is active.
func (o options) chaosEnabled() bool {
	return o.satMTBFHr > 0 || o.islFlapHr > 0 || o.migFail > 0
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.name, "name", "starlink", "constellation: starlink, kuiper, telesat")
	fs.IntVar(&o.sessions, "sessions", 100000, "concurrent long-lived sessions")
	fs.Float64Var(&o.hours, "hours", 2, "simulated window in hours")
	fs.Float64Var(&o.stepSec, "step", 60, "planner epoch in simulated seconds")
	fs.Int64Var(&o.seed, "seed", 1, "workload seed")
	fs.Float64Var(&o.spreadKm, "spread", 300, "max user distance from the group's anchor city (km)")
	fs.IntVar(&o.minUsers, "minusers", 2, "smallest group size")
	fs.IntVar(&o.maxUsers, "maxusers", 5, "largest group size")
	fs.Float64Var(&o.churn, "churn", 2, "transient session arrivals per second (0 disables churn)")
	fs.Float64Var(&o.dwellSec, "dwell", 1800, "mean transient session lifetime in seconds")
	fs.Float64Var(&o.demand, "demand", 0.5, "per-session compute demand in cores")
	fs.IntVar(&o.shards, "shards", 0, "planner footprint-region shards (0 = one per worker)")
	fs.StringVar(&o.csvPath, "csv", "", "per-epoch CSV output path (empty = off)")
	fs.StringVar(&o.debug, "debug", "", "debug listen address for /metrics, /healthz, /debug/pprof (empty = off)")
	fs.BoolVar(&o.progress, "v", false, "log per-epoch progress to stderr")
	fs.StringVar(&o.timeline, "timeline", "auto",
		"flight-recorder cadence in simulated seconds, auto (one frame per epoch), or off")
	fs.StringVar(&o.timelineOut, "timeline-out", "", "timeline JSONL export path (empty = off)")
	fs.StringVar(&o.timelineHTML, "timeline-html", "", "timeline HTML report path (empty = off)")
	fs.IntVar(&o.timelineCap, "timeline-cap", obs.DefaultTimelineCapacity,
		"flight-recorder ring capacity in frames (oldest evicted beyond this)")
	fs.Float64Var(&o.sloReplanMs, "slo-replan-ms", 50, "SLO: p99 per-session replan latency bound in ms")
	fs.Float64Var(&o.sloXferMs, "slo-transfer-ms", 250, "SLO: p99 hand-off transfer latency bound in ms")
	fs.Float64Var(&o.sloAvail, "slo-avail", 0.999, "SLO: assigned/sessions availability floor in (0,1]")
	fs.Int64Var(&o.faultSeed, "fault-seed", 1, "fault-injection seed (independent of the workload seed)")
	fs.Float64Var(&o.satMTBFHr, "sat-mtbf", 0, "mean hours between per-satellite hard failures (0 = no failures; 100 ≈ 1%/h)")
	fs.Float64Var(&o.satMTTRSec, "sat-mttr", 0, "mean seconds to recover a failed satellite (0 = default 1800, negative = never)")
	fs.Float64Var(&o.islFlapHr, "isl-flap", 0, "per-satellite-pair ISL degradation windows per hour (0 = off)")
	fs.Float64Var(&o.migFail, "mig-fail", 0, "probability a migration transfer attempt fails in flight, in [0,1)")
	fs.Float64Var(&o.serve.rate, "serve-rate", 0, "request arrivals per second across all serve sites (0 = serving layer off)")
	fs.StringVar(&o.serve.policy, "serve-policy", "all", "request routing policy: nearest, least-loaded, sticky, or all (compare)")
	fs.IntVar(&o.serve.sites, "serve-sites", 40, "request sites = the N most populous cities")
	fs.Float64Var(&o.serve.serviceMs, "serve-service-ms", 20, "median request service time on one core in ms (lognormal)")
	fs.Float64Var(&o.serve.sigma, "serve-sigma", 0.5, "lognormal shape of the service-time distribution")
	fs.Float64Var(&o.serve.diurnal, "serve-diurnal", 0.6, "diurnal arrival-rate amplitude in [0,1) around the local evening peak")
	fs.IntVar(&o.serve.cores, "serve-cores", 8, "request-serving cores per satellite")
	fs.IntVar(&o.serve.queue, "serve-queue", 64, "per-satellite queue bound beyond the cores (-1 = unbounded)")
	fs.Int64Var(&o.serve.seed, "serve-seed", 1, "request workload seed (independent of the fleet seed)")
	fs.StringVar(&o.serve.tracePath, "serve-trace", "", "write the request trace as JSONL (empty = off)")
	fs.StringVar(&o.serve.replay, "serve-replay", "", "replay a JSONL request trace instead of generating one")
	fs.IntVar(&o.serve.workers, "serve-workers", 0,
		"serve engine worker fan-out: 0 = adaptive (GOMAXPROCS), 1 = serial, N = forced N-way")
	fs.Float64Var(&o.serve.availSLO, "slo-serve-avail", 0.99, "SLO: served/offered request availability floor per policy, in (0,1]")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.sessions <= 0 {
		return o, fmt.Errorf("sessions %d must be positive", o.sessions)
	}
	if o.hours <= 0 {
		return o, fmt.Errorf("hours %v must be positive", o.hours)
	}
	if o.minUsers <= 0 || o.maxUsers < o.minUsers {
		return o, fmt.Errorf("bad user bounds [%d,%d]", o.minUsers, o.maxUsers)
	}
	if o.churn < 0 || o.dwellSec <= 0 {
		return o, fmt.Errorf("churn %v and dwell %v must be non-negative/positive", o.churn, o.dwellSec)
	}
	if o.demand <= 0 {
		return o, fmt.Errorf("demand %v must be positive", o.demand)
	}
	if o.shards < 0 {
		return o, fmt.Errorf("shards %d must be non-negative", o.shards)
	}
	if o.satMTBFHr < 0 || o.islFlapHr < 0 {
		return o, fmt.Errorf("sat-mtbf %v and isl-flap %v must be non-negative", o.satMTBFHr, o.islFlapHr)
	}
	if o.migFail < 0 || o.migFail >= 1 {
		return o, fmt.Errorf("mig-fail %v outside [0,1)", o.migFail)
	}
	if _, err := o.timelineCadence(); err != nil {
		return o, err
	}
	if o.timelineCap <= 0 {
		return o, fmt.Errorf("timeline-cap %d must be positive", o.timelineCap)
	}
	if o.sloAvail <= 0 || o.sloAvail > 1 {
		return o, fmt.Errorf("slo-avail %v outside (0,1]", o.sloAvail)
	}
	if err := o.serve.validate(); err != nil {
		return o, err
	}
	return o, nil
}

// timelineCadence resolves the -timeline flag: a recorder cadence in
// simulated seconds, or 0 when the flight recorder is off.
func (o options) timelineCadence() (float64, error) {
	switch o.timeline {
	case "off":
		return 0, nil
	case "auto", "":
		return o.stepSec, nil
	}
	sec, err := strconv.ParseFloat(o.timeline, 64)
	if err != nil || sec <= 0 {
		return 0, fmt.Errorf("timeline %q must be auto, off, or a positive sim-second cadence", o.timeline)
	}
	return sec, nil
}

// slos builds the run's objectives from the flag bounds.
func (o options) slos() []obs.SLO {
	return []obs.SLO{
		{Name: fmt.Sprintf("p99 replan <= %gms", o.sloReplanMs), Kind: obs.SLOLatency,
			Metric: "fleet_replan_ms", Q: 0.99, Objective: o.sloReplanMs},
		{Name: fmt.Sprintf("p99 transfer <= %gms", o.sloXferMs), Kind: obs.SLOLatency,
			Metric: "fleet_transfer_ms", Q: 0.99, Objective: o.sloXferMs},
		{Name: fmt.Sprintf("availability >= %.2f%%", 100*o.sloAvail), Kind: obs.SLORatio,
			Metric: "fleet_sessions_assigned", TotalMetric: "fleet_sessions", Objective: o.sloAvail},
	}
}

func buildNamed(name string) (*constellation.Constellation, error) {
	switch name {
	case "starlink":
		return constellation.StarlinkPhase1(constellation.Config{})
	case "kuiper":
		return constellation.Kuiper(constellation.Config{})
	case "telesat":
		return constellation.Telesat(constellation.Config{})
	}
	return nil, fmt.Errorf("unknown constellation %q (want starlink, kuiper, telesat)", name)
}

// arrival is one transient session joining mid-run.
type arrival struct {
	at   float64
	sess *fleet.Session
}

// buildWorkload generates the seeded session population: o.sessions
// long-lived groups plus a Poisson stream of transient ones.
func buildWorkload(o options, horizonSec float64) (persistent []*fleet.Session, churn []arrival, err error) {
	times := trace.Poisson(o.seed+1, o.churn, horizonSec)
	groups, err := trace.Groups(trace.GroupConfig{
		Seed:         o.seed,
		Groups:       o.sessions + len(times),
		MinUsers:     o.minUsers,
		MaxUsers:     o.maxUsers,
		SpreadKm:     o.spreadKm,
		MaxAbsLatDeg: 55, // inside every preset's coverage band
	})
	if err != nil {
		return nil, nil, err
	}
	r := rand.New(rand.NewSource(o.seed + 2))
	for i, g := range groups {
		s, err := fleet.NewSession(uint64(i+1), g.Users)
		if err != nil {
			return nil, nil, err
		}
		s.StateMB = trace.StateSizeMB(r, 64, 0.5)
		s.CoresDemand = o.demand
		if i < o.sessions {
			persistent = append(persistent, s)
			continue
		}
		at := times[i-o.sessions]
		s.ExpiresAt = at + r.ExpFloat64()*o.dwellSec
		churn = append(churn, arrival{at: at, sess: s})
	}
	return persistent, churn, nil
}

func run(out io.Writer, o options) error {
	c, err := buildNamed(o.name)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	var inj *faults.Injector
	if o.chaosEnabled() {
		inj, err = faults.New(c.Size(), faults.Config{
			Seed:              o.faultSeed,
			SatMTBFHours:      o.satMTBFHr,
			SatMTTRSec:        o.satMTTRSec,
			ISLFlapPerHour:    o.islFlapHr,
			MigrationFailProb: o.migFail,
		})
		if err != nil {
			return err
		}
	}
	orch, err := fleet.New(c, nil, fleet.Config{
		StepSec:          o.stepSec,
		PlannerShards:    o.shards,
		ExpectedSessions: o.sessions,
		Registry:         reg,
		Faults:           inj,
	})
	if err != nil {
		return err
	}

	var tl *obs.Timeline
	slos := o.slos()
	if cadence, _ := o.timelineCadence(); cadence > 0 {
		tl = obs.NewTimeline(reg, obs.TimelineConfig{CadenceSec: cadence, Capacity: o.timelineCap})
	}

	horizonSec := o.hours * 3600
	var sr *serveRun
	if o.serve.enabled() {
		sr, err = newServeRun(o, c, reg, orch.Ephemeris(), horizonSec, out)
		if err != nil {
			return err
		}
		slos = append(slos, sr.slos(o.serve.availSLO)...)
	}

	if o.debug != "" {
		ln, err := net.Listen("tcp", o.debug)
		if err != nil {
			return fmt.Errorf("debug listen: %w", err)
		}
		defer ln.Close()
		obs.RegisterRuntimeMetrics(reg) // collected by the mux's pre-scrape hook
		var muxOpts []obs.DebugOption
		if tl != nil {
			muxOpts = append(muxOpts, obs.WithTimeline(tl), obs.WithSLOs(slos...))
		}
		go http.Serve(ln, obs.DebugMux(reg, muxOpts...))
		log.Printf("fleetsim: debug endpoint on http://%s/metrics", ln.Addr())
	}

	persistent, churn, err := buildWorkload(o, horizonSec)
	if err != nil {
		return err
	}
	if err := orch.SubmitBatch(persistent); err != nil {
		return err
	}
	if err := orch.Start(0); err != nil {
		return err
	}

	fmt.Fprintf(out, "%s: %d satellites — %d sessions + %.1f/s churn over %.1f h, %vs epochs (seed %d)\n",
		c.Name, c.Size(), o.sessions, o.churn, o.hours, o.stepSec, o.seed)

	epochs := int(horizonSec / o.stepSec)
	var (
		tS, sessS, assignS, handS, rejS, placeS, departS, utilS []float64
		downS, evacS, faultS                                    []float64

		totalHandoffs, totalRejections, totalPlacements, totalDepartures int
		transfer, downtime                                               stats.Summary
		peakSessions                                                     int
		nextArrival                                                      int

		chaos chaosTotals
	)
	chaos.minAssignedFrac = 1
	for e := 0; e < epochs; e++ {
		for nextArrival < len(churn) && churn[nextArrival].at <= orch.Now() {
			if err := orch.Submit(churn[nextArrival].sess); err != nil {
				return err
			}
			nextArrival++
		}
		rep, err := orch.Step()
		if err != nil {
			return err
		}
		totalHandoffs += rep.Handoffs
		totalRejections += rep.Rejections
		totalPlacements += rep.Placements
		totalDepartures += rep.Departures
		if rep.Transfer.N() > 0 {
			transfer.Add(rep.Transfer.Mean())
			downtime.Add(rep.Downtime.Mean())
		}
		if rep.Sessions > peakSessions {
			peakSessions = rep.Sessions
		}
		tS = append(tS, rep.TSec)
		sessS = append(sessS, float64(rep.Sessions))
		assignS = append(assignS, float64(rep.Assigned))
		handS = append(handS, float64(rep.Handoffs))
		rejS = append(rejS, float64(rep.Rejections))
		placeS = append(placeS, float64(rep.Placements))
		departS = append(departS, float64(rep.Departures))
		utilS = append(utilS, rep.MeanUtilization)
		if inj != nil {
			chaos.fold(rep)
			downS = append(downS, float64(rep.DownSats))
			evacS = append(evacS, float64(rep.Evacuations))
			faultS = append(faultS, float64(rep.SatFailures+rep.SatRecoveries))
		}
		if o.progress {
			log.Printf("t=%6.0fs sessions=%d assigned=%d handoffs=%d rejected=%d wall=%.2fs",
				rep.TSec, rep.Sessions, rep.Assigned, rep.Handoffs, rep.Rejections, rep.WallSec)
		}
		if sr != nil {
			sr.advance(orch.Now())
		}
		if tl != nil {
			tl.MaybeRecord(orch.Now())
		}
	}

	if o.csvPath != "" {
		f, err := os.Create(o.csvPath)
		if err != nil {
			return err
		}
		series := []plot.Series{
			{Name: "sessions", X: tS, Y: sessS},
			{Name: "assigned", X: tS, Y: assignS},
			{Name: "placements", X: tS, Y: placeS},
			{Name: "handoffs", X: tS, Y: handS},
			{Name: "rejections", X: tS, Y: rejS},
			{Name: "departures", X: tS, Y: departS},
			{Name: "mean_util", X: tS, Y: utilS},
		}
		if inj != nil {
			series = append(series,
				plot.Series{Name: "down_sats", X: tS, Y: downS},
				plot.Series{Name: "evacuations", X: tS, Y: evacS},
				plot.Series{Name: "fault_events", X: tS, Y: faultS},
			)
		}
		w := bufio.NewWriter(f)
		err = plot.WriteCSV(w, series...)
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "per-epoch series written to %s\n", o.csvPath)
	}

	if tl != nil {
		if err := exportTimeline(out, tl, o); err != nil {
			return err
		}
	}

	if err := report(out, orch, reportInputs{
		epochs:       epochs,
		horizonSec:   horizonSec,
		peakSessions: peakSessions,
		handoffs:     totalHandoffs,
		rejections:   totalRejections,
		placements:   totalPlacements,
		departures:   totalDepartures,
		transfer:     transfer,
		downtime:     downtime,
		inj:          inj,
		chaos:        chaos,
		tl:           tl,
		slos:         slos,
		sr:           sr,
	}); err != nil {
		return err
	}
	// The serve report prints last: it contains only simulated quantities,
	// so `sed -n '/^serve report/,$p'` of two same-seed runs is diffable.
	if sr != nil {
		return serveReport(out, sr)
	}
	return nil
}

// exportTimeline writes the recorded frames to the requested files.
func exportTimeline(out io.Writer, tl *obs.Timeline, o options) error {
	write := func(path string, render func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		err = render(w)
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	if o.timelineOut != "" {
		if err := write(o.timelineOut, tl.WriteJSONL); err != nil {
			return err
		}
		fmt.Fprintf(out, "timeline JSONL written to %s\n", o.timelineOut)
	}
	if o.timelineHTML != "" {
		title := fmt.Sprintf("fleetsim %s — %d sessions", o.name, o.sessions)
		if err := write(o.timelineHTML, func(w io.Writer) error { return tl.WriteHTML(w, title) }); err != nil {
			return err
		}
		fmt.Fprintf(out, "timeline HTML written to %s\n", o.timelineHTML)
	}
	return nil
}

type reportInputs struct {
	epochs       int
	horizonSec   float64
	peakSessions int

	handoffs, rejections, placements, departures int
	transfer, downtime                           stats.Summary

	inj   *faults.Injector // nil when chaos is off
	chaos chaosTotals

	tl   *obs.Timeline // nil when -timeline=off
	slos []obs.SLO
	sr   *serveRun // nil when the serving layer is off
}

// chaosTotals accumulates the fault-injection story over the run. All of
// it is deterministic for a fixed flag set, so the chaos report section is
// safe to diff across same-seed runs.
type chaosTotals struct {
	satFailures, satRecoveries          int
	evacuations, evacuationsDeferred    int
	migrationFailures, backoffDeferrals int
	islDegradations                     int
	minAssignedFrac, finalAssignedFrac  float64
}

func (ct *chaosTotals) fold(rep fleet.EpochReport) {
	ct.satFailures += rep.SatFailures
	ct.satRecoveries += rep.SatRecoveries
	ct.evacuations += rep.Evacuations
	ct.evacuationsDeferred += rep.EvacuationsDeferred
	ct.migrationFailures += rep.MigrationFailures
	ct.backoffDeferrals += rep.BackoffDeferrals
	ct.islDegradations += rep.ISLDegradations
	if rep.Sessions > 0 {
		frac := float64(rep.Assigned) / float64(rep.Sessions)
		if frac < ct.minAssignedFrac {
			ct.minAssignedFrac = frac
		}
		ct.finalAssignedFrac = frac
	}
}

// report prints the fleet summary: population, hand-off pressure, placement
// latency quantiles, and how the load spread over the satellite-servers.
// Everything fleet-side comes off one fleet.Stats snapshot instead of
// scraping obs metric families by name.
func report(out io.Writer, orch *fleet.Orchestrator, in reportInputs) error {
	st := orch.Stats()
	hours := in.horizonSec / 3600

	sessionHours := float64(st.Sessions) * hours // steady-state approximation
	handoffRate := 0.0
	if sessionHours > 0 {
		handoffRate = float64(in.handoffs) / sessionHours
	}

	fmt.Fprintf(out, "\nfleet report — %d epochs, %.1f h simulated\n", in.epochs, hours)
	rows := [][]string{
		{"sessions (final / peak)", fmt.Sprintf("%d / %d", st.Sessions, in.peakSessions)},
		{"initial placements", fmt.Sprintf("%d", in.placements)},
		{"hand-offs", fmt.Sprintf("%d (%.2f per session-hour)", in.handoffs, handoffRate)},
		{"rejections", fmt.Sprintf("%d", in.rejections)},
		{"departures", fmt.Sprintf("%d", in.departures)},
		{"mean transfer latency", fmt.Sprintf("%.2f ms one-way", in.transfer.Mean())},
		{"mean migration downtime", fmt.Sprintf("%.1f ms", in.downtime.Mean()*1000)},
		{"placement latency", fmt.Sprintf("p50 %.1f µs, p90 %.1f µs, p99 %.1f µs",
			st.ReplanMs.P50*1000, st.ReplanMs.P90*1000, st.ReplanMs.P99*1000)},
		{"planner shards", shardLine(st)},
		{"satellites loaded", fmt.Sprintf("%d of %d", st.LoadedSats, st.Satellites)},
		{"core utilisation", fmt.Sprintf("mean %.1f%%, p50 %.1f%%, p90 %.1f%%, max %.1f%%",
			100*st.MeanUtilization, 100*st.UtilizationP50, 100*st.UtilizationP90, 100*st.UtilizationMax)},
		{"ephemeris cache", ephemLine(orch.Ephemeris().Stats())},
		{"frozen-graph routing", netgraphLine(netgraph.TotalStats())},
	}
	if in.sr != nil {
		rows = append(rows, []string{"serve engine", in.sr.engineLine()})
	}
	if in.tl != nil {
		ts := in.tl.Stats()
		rows = append(rows, []string{"flight recorder",
			fmt.Sprintf("%d frames in ring (cap %d, %d evicted), cadence %gs",
				ts.Frames, ts.Capacity, ts.Dropped, in.tl.Cadence())})
	}
	if err := plot.Table(out, nil, rows); err != nil {
		return err
	}
	if in.tl != nil {
		fmt.Fprintf(out, "\nSLO report — objectives over the recorded timeline\n")
		if err := obs.WriteSLOTable(out, obs.EvalSLOs(in.tl, in.slos...)); err != nil {
			return err
		}
	}
	if in.inj == nil {
		return nil
	}

	ct := in.chaos
	fmt.Fprintf(out, "\nchaos report — injected faults and how the fleet absorbed them\n")
	crows := [][]string{
		{"satellite failures / recoveries", fmt.Sprintf("%d / %d (%d down at end)",
			ct.satFailures, ct.satRecoveries, in.inj.DownCount())},
		{"evacuations (completed / deferred)", fmt.Sprintf("%d / %d", ct.evacuations, ct.evacuationsDeferred)},
		{"migration transfer failures", fmt.Sprintf("%d (backoff deferrals: %d)",
			ct.migrationFailures, ct.backoffDeferrals)},
		{"ISL-degraded transfers", fmt.Sprintf("%d (spilled to ground relay)", ct.islDegradations)},
		{"assigned fraction (min / final)", fmt.Sprintf("%.1f%% / %.1f%%",
			100*ct.minAssignedFrac, 100*ct.finalAssignedFrac)},
	}
	return plot.Table(out, nil, crows)
}

// ephemLine formats the ring's ephemeris-cache outcome. A standalone run
// requests every epoch instant exactly once (the ring rotation keeps old
// frames alive without re-querying), so hits stay at zero unless the
// engine is shared with other consumers of the same constellation.
func ephemLine(s ephem.Stats) string {
	total := s.Hits + s.Misses
	if total == 0 {
		return "unused"
	}
	return fmt.Sprintf("%d hits / %d misses (%.1f%% hit rate, %d sat propagations)",
		s.Hits, s.Misses, 100*float64(s.Hits)/float64(total), s.PropagatedSats)
}

// netgraphLine formats the frozen-graph routing activity. The fleet's
// hand-off planner routes over the static ISL grid, so a standalone run
// shows ISL queries with no snapshot freezes.
func netgraphLine(s netgraph.Stats) string {
	if s.Queries() == 0 && s.Freezes == 0 {
		return "unused"
	}
	return fmt.Sprintf("%d queries (%d path / %d sssp / %d isl), %d snapshot freezes (%d delta)",
		s.Queries(), s.PathQueries, s.SSSPQueries, s.ISLQueries, s.Freezes, s.DeltaFreezes)
}

// shardLine summarises the planner's footprint-region shard utilisation
// from the last epoch: how even the per-region work split came out.
func shardLine(st fleet.Stats) string {
	if len(st.ShardWork) == 0 {
		return fmt.Sprintf("%d (no epochs yet)", st.PlannerShards)
	}
	total, max := 0, 0
	for _, w := range st.ShardWork {
		total += w
		if w > max {
			max = w
		}
	}
	if total == 0 {
		return fmt.Sprintf("%d (idle last epoch)", st.PlannerShards)
	}
	balance := float64(max) * float64(len(st.ShardWork)) / float64(total)
	return fmt.Sprintf("%d (last epoch: %d items, max/mean %.2f)", st.PlannerShards, total, balance)
}

func main() {
	log.SetOutput(os.Stderr)
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fatal(err)
	}
	if err := run(os.Stdout, o); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}
