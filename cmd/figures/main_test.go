package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// The runner methods are the command's substance; exercise the fast paths
// end to end (stdout is the program's interface, so we only assert on side
// effects and error-freeness here — content is asserted in the experiments
// package tests).

func testRunner(t *testing.T) runner {
	t.Helper()
	return runner{out: t.TempDir(), fast: true}
}

func TestFeasibilityFigure(t *testing.T) {
	if err := testRunner(t).feasibility(); err != nil {
		t.Fatal(err)
	}
}

func TestEOFigure(t *testing.T) {
	if err := testRunner(t).eo(); err != nil {
		t.Fatal(err)
	}
}

func TestWeatherFigure(t *testing.T) {
	if err := testRunner(t).weather(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFigure(t *testing.T) {
	if err := testRunner(t).power(); err != nil {
		t.Fatal(err)
	}
}

func TestFig1WritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full constellations")
	}
	r := testRunner(t)
	if err := r.fig1(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(r.out, "fig1_rtt_vs_latitude.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Starlink Phase I min RTT") {
		t.Fatal("CSV missing series")
	}
}

func TestFig4WritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full constellations")
	}
	r := testRunner(t)
	if err := r.fig4(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(r.out, "fig4_invisible_vs_cities.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestIndentHelper(t *testing.T) {
	got := indent("a\nb\n", "  ")
	if got != "  a\n  b" {
		t.Fatalf("indent = %q", got)
	}
}

func TestParseBenchOutput(t *testing.T) {
	sample := `goos: linux
goarch: amd64
pkg: repro
cpu: whatever
BenchmarkFig1RTTvsLatitude-8   	       1	1234567890 ns/op	        11.20 worst-nearest-rtt-ms	        15.70 worst-farthest-rtt-ms
BenchmarkFeasibilityTable-8    	     120	   9876543 ns/op	         3.10 orbit-over-dc-cost-x
BenchmarkFig1RTTvsLatitude-8   	       2	1200000000 ns/op	        11.50 worst-nearest-rtt-ms	        15.90 worst-farthest-rtt-ms
BenchmarkBroken-8              	  failure line without iters
PASS
ok  	repro	12.345s
`
	results, err := parseBenchOutput(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %+v, want 2", results)
	}
	// Sorted by name; repeated benchmark keeps the last run.
	if results[0].Name != "FeasibilityTable" || results[1].Name != "Fig1RTTvsLatitude" {
		t.Fatalf("names = %s, %s", results[0].Name, results[1].Name)
	}
	fig1 := results[1]
	if fig1.Iterations != 2 {
		t.Fatalf("iterations = %d, want last run's 2", fig1.Iterations)
	}
	if fig1.Metrics["worst-nearest-rtt-ms"] != 11.5 || fig1.Metrics["ns/op"] != 1.2e9 {
		t.Fatalf("metrics = %+v", fig1.Metrics)
	}
}

func TestBenchJSONEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte("BenchmarkX-4 3 100 ns/op 7.5 things-per-op\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "BENCH_obs.json")
	if err := benchJSON(in, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchFile
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].Name != "X" || doc.Benchmarks[0].Metrics["things-per-op"] != 7.5 {
		t.Fatalf("doc = %+v", doc)
	}
	// No benchmark lines at all is an error, not an empty artifact.
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := benchJSON(empty, out); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestRunFigureRecordsTiming(t *testing.T) {
	r := testRunner(t)
	r.tracer = obs.NewTracer(nil)
	info := newRunInfo(true)
	if err := r.runFigure("feasibility", r.feasibility, &info); err != nil {
		t.Fatal(err)
	}
	if len(info.Figures) != 1 || info.Figures[0].Name != "feasibility" || info.Figures[0].Seconds < 0 {
		t.Fatalf("info = %+v", info)
	}
	if r.tracer.Len() != 1 {
		t.Fatalf("spans = %d, want 1", r.tracer.Len())
	}
	// The run artifact round-trips.
	path := filepath.Join(r.out, "runinfo.json")
	if err := writeRunInfo(path, info); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back runInfo
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("runinfo.json invalid: %v", err)
	}
	if back.GoVersion == "" || back.NumCPU == 0 || len(back.Figures) != 1 {
		t.Fatalf("runinfo = %+v", back)
	}
}

func TestChromeTraceArtifact(t *testing.T) {
	dir := t.TempDir()
	tr := obs.NewTracer(nil)
	tr.Start("fig:demo").End()
	path := filepath.Join(dir, "trace.json")
	if err := writeChromeTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if len(events) != 1 || events[0]["name"] != "fig:demo" {
		t.Fatalf("events = %+v", events)
	}
}
