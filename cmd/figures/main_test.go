package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The runner methods are the command's substance; exercise the fast paths
// end to end (stdout is the program's interface, so we only assert on side
// effects and error-freeness here — content is asserted in the experiments
// package tests).

func testRunner(t *testing.T) runner {
	t.Helper()
	return runner{out: t.TempDir(), fast: true}
}

func TestFeasibilityFigure(t *testing.T) {
	if err := testRunner(t).feasibility(); err != nil {
		t.Fatal(err)
	}
}

func TestEOFigure(t *testing.T) {
	if err := testRunner(t).eo(); err != nil {
		t.Fatal(err)
	}
}

func TestWeatherFigure(t *testing.T) {
	if err := testRunner(t).weather(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFigure(t *testing.T) {
	if err := testRunner(t).power(); err != nil {
		t.Fatal(err)
	}
}

func TestFig1WritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full constellations")
	}
	r := testRunner(t)
	if err := r.fig1(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(r.out, "fig1_rtt_vs_latitude.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Starlink Phase I min RTT") {
		t.Fatal("CSV missing series")
	}
}

func TestFig4WritesCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full constellations")
	}
	r := testRunner(t)
	if err := r.fig4(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(r.out, "fig4_invisible_vs_cities.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestIndentHelper(t *testing.T) {
	got := indent("a\nb\n", "  ")
	if got != "  a\n  b" {
		t.Fatalf("indent = %q", got)
	}
}
