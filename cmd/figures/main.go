// Command figures regenerates every table and figure from the paper's
// evaluation. Each figure writes a CSV under -out and prints an ASCII
// rendering plus the summary quantities the paper quotes.
//
// Usage:
//
//	figures -fig all            # everything, paper scale
//	figures -fig 1 -fast        # one figure, reduced sampling
//	figures -fig feasibility    # the §4 table
//	figures -trace run.json     # also export a Chrome trace of the run
//	go test -bench . -run '^$' | figures -benchjson -   # bench -> BENCH_obs.json
//
// Every run prints a per-figure timing table on stderr and writes
// <out>/runinfo.json with durations, sample counts, and Go/host metadata.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/netgraph"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/power"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 1..7, feasibility, eo, ablation, weather, matchmaking, churn, capacity, edgeload, power, cdnlat, servepolicy, all")
		out      = flag.String("out", "results", "output directory for CSV files")
		fast     = flag.Bool("fast", false, "reduced sampling for quick runs")
		traceOut = flag.String("trace", "", "write a Chrome trace-event file of the run (open in about://tracing)")
		benchIn  = flag.String("benchjson", "", "post-process `go test -bench` output (path or - for stdin) instead of running figures")
		benchOut = flag.String("benchout", "BENCH_obs.json", "output path for -benchjson")
	)
	flag.Parse()

	if *benchIn != "" {
		if err := benchJSON(*benchIn, *benchOut); err != nil {
			fatal(err)
		}
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	r := runner{out: *out, fast: *fast, tracer: obs.NewTracer(nil)}
	netgraph.SetTracer(r.tracer) // snapshot-freeze spans join the run trace
	// Flight recorder over the process-default registry (where the shared
	// ephemeris engine and frozen-graph routing report); one frame is
	// recorded per figure at its elapsed wall-clock offset.
	tl := obs.NewTimeline(obs.Default(), obs.TimelineConfig{})

	jobs := map[string]func() error{
		"1":           r.fig1,
		"2":           r.fig2,
		"3":           r.fig3,
		"4":           r.fig4,
		"5":           r.fig5,
		"6":           r.fig67, // 6 and 7 share one simulation
		"7":           r.fig67,
		"feasibility": r.feasibility,
		"eo":          r.eo,
		"ablation":    r.ablation,
		"weather":     r.weather,
		"matchmaking": r.matchmaking,
		"churn":       r.churn,
		"capacity":    r.capacity,
		"edgeload":    r.edgeload,
		"power":       r.power,
		"cdnlat":      r.cdnlat,
		"servepolicy": r.servepolicy,
	}
	order := []string{"1", "2", "3", "4", "5", "6", "feasibility", "eo", "ablation", "weather", "matchmaking", "churn", "capacity", "edgeload", "power", "cdnlat", "servepolicy"}

	var names []string
	switch *fig {
	case "all":
		names = order
	default:
		if _, ok := jobs[*fig]; !ok {
			fatal(fmt.Errorf("unknown figure %q", *fig))
		}
		names = []string{*fig}
	}

	info := newRunInfo(*fast)
	info.GeneratedUnix = time.Now().Unix()
	startIters := experiments.Progress()
	runStart := time.Now()
	for _, name := range names {
		if err := r.runFigure(name, jobs[name], &info); err != nil {
			fatal(fmt.Errorf("fig %s: %w", name, err))
		}
		tl.Record(time.Since(runStart).Seconds())
	}
	info.TotalSeconds = time.Since(runStart).Seconds()
	info.SweepIterations = experiments.Progress() - startIters
	es := experiments.EphemStats()
	info.EphemCacheHits, info.EphemCacheMisses = es.Hits, es.Misses
	if total := es.Hits + es.Misses; total > 0 {
		fmt.Fprintf(os.Stderr, "ephem cache: %d hits / %d misses (%.1f%% hit rate, %d satellite propagations)\n",
			es.Hits, es.Misses, 100*float64(es.Hits)/float64(total), es.PropagatedSats)
	}
	ns := netgraph.TotalStats()
	info.NetgraphFreezes = ns.Freezes
	info.NetgraphDeltaFreezes = ns.DeltaFreezes
	info.NetgraphFrozenEdges = ns.FrozenEdges
	info.NetgraphQueries = ns.Queries()
	info.TimelineFrames = tl.Stats().Frames
	if ns.PathQueries > 0 {
		q := netgraph.QueryQuantiles("path", 0.50, 0.95, 0.99)
		info.PathQueryP50Ms, info.PathQueryP95Ms, info.PathQueryP99Ms = q[0], q[1], q[2]
		fmt.Fprintf(os.Stderr, "netgraph path query latency: p50 %.4g ms, p95 %.4g ms, p99 %.4g ms\n",
			q[0], q[1], q[2])
	}
	for _, res := range obs.EvalSLOs(tl, figureSLOs(ns)...) {
		info.SLOs = append(info.SLOs,
			sloSummary{Name: res.SLO.Name, Met: res.Met, Compliance: res.Compliance})
	}
	if err := writeTimeline(filepath.Join(*out, "timeline.jsonl"), tl); err != nil {
		fatal(err)
	}
	if ns.Freezes > 0 {
		fmt.Fprintf(os.Stderr, "netgraph: %d snapshot freezes (%d delta, %d edges), %d routing queries (%d path / %d sssp / %d isl)\n",
			ns.Freezes, ns.DeltaFreezes, ns.FrozenEdges, ns.Queries(), ns.PathQueries, ns.SSSPQueries, ns.ISLQueries)
	}

	printTimingTable(info)
	runinfoPath := filepath.Join(*out, "runinfo.json")
	if err := writeRunInfo(runinfoPath, info); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", runinfoPath)
	if *traceOut != "" {
		if err := writeChromeTrace(*traceOut, r.tracer); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *traceOut)
	}
}

// figureSLOs are the objectives judged over a figures run: routing-query
// latency stays interactive whenever the run actually routed.
func figureSLOs(ns netgraph.Stats) []obs.SLO {
	var slos []obs.SLO
	if ns.PathQueries > 0 {
		slos = append(slos, obs.SLO{Name: "p99 path query <= 5ms", Kind: obs.SLOLatency,
			Metric: "netgraph_query_ms", Labels: map[string]string{"kind": "path"},
			Q: 0.99, Objective: 5})
	}
	if ns.SSSPQueries > 0 {
		slos = append(slos, obs.SLO{Name: "p99 sssp query <= 50ms", Kind: obs.SLOLatency,
			Metric: "netgraph_query_ms", Labels: map[string]string{"kind": "sssp"},
			Q: 0.99, Objective: 50})
	}
	return slos
}

// writeTimeline exports the recorded frames as JSONL next to the figures.
func writeTimeline(path string, tl *obs.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tl.WriteJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return err
}

// runFigure wraps one figure job in a span and records its timing and sweep
// volume into the run info.
func (r runner) runFigure(name string, job func() error, info *runInfo) error {
	sp := r.tracer.Start("fig:" + name)
	before := experiments.Progress()
	start := time.Now()
	err := job()
	seconds := time.Since(start).Seconds()
	samples := experiments.Progress() - before
	sp.SetAttr("samples", fmt.Sprint(samples))
	sp.End()
	info.Figures = append(info.Figures, figTiming{Name: name, Seconds: seconds, Samples: samples})
	fmt.Fprintf(os.Stderr, "fig %s: %.2fs (%d sweep iterations)\n", name, seconds, samples)
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

type runner struct {
	out    string
	fast   bool
	tracer *obs.Tracer // nil-safe: an unset tracer records nothing
}

func (r runner) sweep() experiments.LatitudeSweepConfig {
	cfg := experiments.LatitudeSweepConfig{}
	if r.fast {
		cfg.LatStepDeg = 3
		cfg.SampleEverySec = 300
		cfg.DurationSec = 3600
	}
	return cfg
}

func (r runner) writeCSV(name string, ragged bool, series ...plot.Series) error {
	path := filepath.Join(r.out, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if ragged {
		err = plot.WriteCSVRagged(f, series...)
	} else {
		err = plot.WriteCSV(f, series...)
	}
	if err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}

func (r runner) fig1() error {
	fmt.Println("== Figure 1: max and min RTT to reachable satellite-servers vs latitude ==")
	results, err := experiments.Fig1(r.sweep())
	if err != nil {
		return err
	}
	var all []plot.Series
	for _, res := range results {
		minS, maxS := res.Series()
		all = append(all, minS, maxS)
		fmt.Println("  " + experiments.Fig1Check(res))
	}
	if err := r.writeCSV("fig1_rtt_vs_latitude.csv", true, all...); err != nil {
		return err
	}
	return plot.ASCIIChart(os.Stdout, "  RTT (ms) vs latitude (deg)", 100, 18, all...)
}

func (r runner) fig2() error {
	fmt.Println("== Figure 2: satellite-servers within range vs latitude ==")
	results, err := experiments.Fig2(r.sweep())
	if err != nil {
		return err
	}
	var all []plot.Series
	for _, res := range results {
		avg, minS, maxS := res.Series()
		all = append(all, avg, minS, maxS)
		// Summarise the paper's prose claims.
		within, typical := 0, 0
		for _, row := range res.Rows {
			if row.LatDeg <= 56 {
				within++
				if row.MeanCount > 40 {
					typical++
				}
			}
		}
		fmt.Printf("  %s: %d/%d serviced latitudes average >40 reachable satellites\n",
			res.Constellation, typical, within)
	}
	if err := r.writeCSV("fig2_reachable_vs_latitude.csv", true, all...); err != nil {
		return err
	}
	return plot.ASCIIChart(os.Stdout, "  reachable satellites vs latitude (deg)", 100, 18, all...)
}

func (r runner) fig3() error {
	fmt.Println("== Figure 3 / §3.2: meetup-server placement ==")
	cfg := experiments.Fig3Config{}
	if r.fast {
		cfg = experiments.Fig3Config{SampleEverySec: 300, DurationSec: 3600}
	}
	var rows [][]string
	for _, sc := range []experiments.Fig3Scenario{experiments.WestAfricaScenario(), experiments.TriContinentScenario()} {
		res, err := experiments.Fig3(sc, cfg)
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			res.Scenario.Name,
			res.Scenario.Constellation,
			fmt.Sprintf("%.1f", res.TerrestrialRTTMs),
			res.TerrestrialDC,
			fmt.Sprintf("%.1f", res.InOrbitRTTMs),
			fmt.Sprintf("%.1f", res.InOrbitBestRTTMs),
			fmt.Sprintf("%.2fx", res.Improvement),
			fmt.Sprintf("%.1f", res.StickyPremiumMs),
		})
	}
	return plot.Table(os.Stdout, []string{
		"scenario", "constellation", "terrestrial ms", "best DC", "in-orbit ms", "oracle ms", "improvement", "sticky premium ms",
	}, rows)
}

func (r runner) fig4() error {
	fmt.Println("== Figure 4: satellites invisible from the n largest cities ==")
	results, err := experiments.Fig4(experiments.Fig4Config{})
	if err != nil {
		return err
	}
	var all []plot.Series
	for _, res := range results {
		all = append(all, res.Series())
		last := res.Invisible[len(res.Invisible)-1]
		fmt.Printf("  %s: %d/%d (%.0f%%) invisible with 1000 cities\n",
			res.Constellation, last, res.Total, 100*float64(last)/float64(res.Total))
	}
	if err := r.writeCSV("fig4_invisible_vs_cities.csv", true, all...); err != nil {
		return err
	}
	return plot.ASCIIChart(os.Stdout, "  invisible satellites vs number of cities", 100, 16, all...)
}

func (r runner) fig5() error {
	fmt.Println("== Figure 5: map of invisible Starlink satellites (n=1000 cities) ==")
	results, err := experiments.Fig5(experiments.ConstellationSet{Starlink: true}, 1000, 0)
	if err != nil {
		return err
	}
	res := results[0]
	south := 0
	var lats, lons []float64
	for _, s := range res.InvisibleSats {
		if s.LatDeg < 0 {
			south++
		}
		lats = append(lats, s.LatDeg)
		lons = append(lons, s.LonDeg)
	}
	fmt.Printf("  %d invisible of %d; %.0f%% in the southern hemisphere\n",
		len(res.InvisibleSats), res.Total, 100*float64(south)/float64(len(res.InvisibleSats)))
	if err := r.writeCSV("fig5_invisible_positions.csv", false, plot.Series{Name: "lat", X: lons, Y: lats}); err != nil {
		return err
	}
	return experiments.RenderFig5(res, 140, 40).Render(os.Stdout, "  '+' = city, 'O' = invisible satellite")
}

func (r runner) fig67() error {
	fmt.Println("== Figures 6 & 7: hand-off dynamics, Sticky vs MinMax ==")
	cfg := experiments.Fig67Config{}
	if r.fast {
		cfg = experiments.Fig67Config{Groups: 6, DurationSec: 3600, StepSec: 5}
	}
	res, err := experiments.Fig67(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  groups simulated: %d\n", res.GroupsSimulated)
	fmt.Printf("  hand-offs: MinMax %d, Sticky %d (%.1fx fewer)\n",
		res.HandoffsMinMax, res.HandoffsSticky, float64(res.HandoffsMinMax)/float64(res.HandoffsSticky))
	fmt.Printf("  median time between hand-offs: MinMax %.0f s, Sticky %.0f s (%.1fx longer; paper: 41 s vs 164 s)\n",
		res.IntervalsMinMax.Median(), res.IntervalsSticky.Median(), res.MedianRatio())
	fmt.Printf("  mean group RTT: MinMax %.1f ms, Sticky %.1f ms (premium %.1f ms; paper: ~1.4 ms)\n",
		res.MeanRTTMinMax, res.MeanRTTSticky, res.MeanRTTSticky-res.MeanRTTMinMax)
	fmt.Printf("  state transfer ms: MinMax median %.1f p90 %.1f | Sticky median %.1f p90 %.1f\n",
		res.TransfersMinMax.Median(), res.TransfersMinMax.Quantile(0.9),
		res.TransfersSticky.Median(), res.TransfersSticky.Quantile(0.9))

	mm6, st6 := res.Fig6Series()
	if err := r.writeCSV("fig6_handoff_interval_cdf.csv", true, mm6, st6); err != nil {
		return err
	}
	if err := plot.ASCIIChart(os.Stdout, "  Fig 6: CDF of time between hand-offs (s)", 100, 16, mm6, st6); err != nil {
		return err
	}
	mm7, st7 := res.Fig7Series()
	if err := r.writeCSV("fig7_transfer_latency_cdf.csv", true, mm7, st7); err != nil {
		return err
	}
	return plot.ASCIIChart(os.Stdout, "  Fig 7: CDF of state-transfer latency (ms)", 100, 16, mm7, st7)
}

func (r runner) feasibility() error {
	fmt.Println("== §4: feasibility of in-orbit compute ==")
	table, _, err := experiments.FeasibilityTable()
	if err != nil {
		return err
	}
	fmt.Println(indent(table, "  "))
	return nil
}

func (r runner) eo() error {
	fmt.Println("== §3.3: sensing time vs in-orbit pre-processing ==")
	rows, err := experiments.EOSweep(0.08, nil)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		table = append(table, []string{
			fmt.Sprintf("%.0fx", row.PreprocessFactor),
			fmt.Sprintf("%.1f%%", row.SensingDuty*100),
			fmt.Sprintf("%.0f%%", row.DownlinkSavings*100),
		})
	}
	return plot.Table(os.Stdout, []string{"preprocess factor", "sensing duty", "downlink saved"}, table)
}

func (r runner) ablation() error {
	fmt.Println("== Ablations ==")
	base := experiments.Fig67Config{Groups: 6, DurationSec: 1800, StepSec: 5}
	if !r.fast {
		base = experiments.Fig67Config{Groups: 10, DurationSec: 3600, StepSec: 2}
	}

	fmt.Println("  -- Sticky knobs (latency band x pool size) --")
	rows, err := experiments.StickyAblation(nil, []int{1, 5}, base)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		table = append(table, []string{
			fmt.Sprintf("%.0f%%", row.LatencyBand*100),
			fmt.Sprintf("%d", row.PoolSize),
			fmt.Sprintf("%.0f", row.MedianHoldSec),
			fmt.Sprintf("%d", row.Handoffs),
			fmt.Sprintf("%.1f", row.MeanRTTMs),
		})
	}
	if err := plot.Table(os.Stdout, []string{"band", "pool", "median hold s", "handoffs", "mean RTT ms"}, table); err != nil {
		return err
	}

	fmt.Println("  -- Transfer path: +grid ISL vs line-of-sight bound --")
	tr, err := experiments.TransferAblation(base)
	if err != nil {
		return err
	}
	if tr.ISL.N() > 0 {
		fmt.Printf("  ISL median %.1f ms vs LoS median %.1f ms; mean inflation %.1fx over %d transfers\n",
			tr.ISL.Median(), tr.LineOfSight.Median(), tr.MeanInflation, tr.ISL.N())
	}

	fmt.Println("  -- Elevation mask sensitivity (Starlink) --")
	masks, err := experiments.MaskAblation(nil, 5, 10)
	if err != nil {
		return err
	}
	var mtable [][]string
	for _, row := range masks {
		mtable = append(mtable, []string{
			fmt.Sprintf("%.0f°", row.MaskDeg),
			fmt.Sprintf("%.1f", row.MeanReachable),
			fmt.Sprintf("%.1f", row.WorstNearestRTTMs),
			fmt.Sprintf("%d", row.UncoveredSamples),
		})
	}
	return plot.Table(os.Stdout, []string{"mask", "mean reachable", "worst nearest RTT ms", "uncovered samples"}, mtable)
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = prefix + lines[i]
	}
	return strings.Join(lines, "\n")
}

func (r runner) weather() error {
	fmt.Println("== Extension: weather availability (the paper's §6 caveat) ==")
	rows, err := experiments.WeatherStudy(nil)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		table = append(table, []string{
			row.Climate,
			row.Band.String(),
			fmt.Sprintf("%.0f dB", row.MarginDB),
			fmt.Sprintf("%.1f mm/h", row.OutageMmH),
			fmt.Sprintf("%.3f%%", row.Availability*100),
		})
	}
	return plot.Table(os.Stdout, []string{"climate", "band", "margin", "outage rain", "availability"}, table)
}

func (r runner) matchmaking() error {
	fmt.Println("== Extension: matchmaking reach (§3.2 framing) ==")
	cfg := experiments.MatchmakingConfig{}
	if r.fast {
		cfg.PairsPerBucket = 8
	}
	rows, err := experiments.Matchmaking(cfg)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		table = append(table, []string{
			fmt.Sprintf("%.0f km", row.SeparationKm),
			fmt.Sprintf("%.0f%%", row.PlayableTerrestrial*100),
			fmt.Sprintf("%.0f%%", row.PlayableInOrbit*100),
			fmt.Sprintf("%.0f ms", row.MeanTerrestrialMs),
			fmt.Sprintf("%.0f ms", row.MeanInOrbitMs),
		})
	}
	return plot.Table(os.Stdout, []string{
		"player separation", "playable (fiber+DC)", "playable (in-orbit)", "mean RTT fiber", "mean RTT orbit",
	}, table)
}

func (r runner) churn() error {
	fmt.Println("== Extension: route dynamics over the constellation ==")
	dur, step := 1800.0, 15.0
	if r.fast {
		dur, step = 600, 30
	}
	rows, err := experiments.ChurnStudy(dur, step)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		table = append(table, []string{
			row.Name,
			fmt.Sprintf("%.0f km", row.GeodesicKm),
			fmt.Sprintf("%.0f s", row.MedianPathLifeS),
			fmt.Sprintf("%d", row.PathChanges),
			fmt.Sprintf("%.1f ms", row.MeanLatencyMs),
			fmt.Sprintf("%.1f ms", row.JitterMs),
			fmt.Sprintf("%.2fx", row.Stretch),
		})
	}
	return plot.Table(os.Stdout, []string{
		"route", "geodesic", "median path life", "changes", "mean one-way", "jitter", "stretch",
	}, table)
}

func (r runner) capacity() error {
	fmt.Println("== Extension: fleet capacity vs urban demand ==")
	rows, err := experiments.CapacityStudy(nil, 500)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		table = append(table, []string{
			fmt.Sprintf("%.1f%%", row.AdoptionPct),
			fmt.Sprintf("%.1f%%", row.SatisfiedPct),
			fmt.Sprintf("%.1f%%", row.FleetUtilPct),
			fmt.Sprintf("%d", row.IdleSats),
			fmt.Sprintf("%s (%.0f%%)", row.WorstCity, row.WorstSatisfiedPct),
		})
	}
	return plot.Table(os.Stdout, []string{
		"adoption", "demand satisfied", "fleet utilization", "idle sats", "worst city",
	}, table)
}

func (r runner) edgeload() error {
	fmt.Println("== Extension: edge request latency under load (Lagos, 64-core servers) ==")
	rates := []float64{100, 1000, 4000, 8000}
	if r.fast {
		rates = []float64{100, 4000}
	}
	rows, err := experiments.EdgeLoadStudy(rates)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		table = append(table, []string{
			row.Policy,
			fmt.Sprintf("%.0f/s", row.ArrivalPerSec),
			fmt.Sprintf("%.1f ms", row.P50Ms),
			fmt.Sprintf("%.1f ms", row.P99Ms),
			fmt.Sprintf("%d", row.ServersUsed),
			fmt.Sprintf("%.0f%%", row.MaxUtilization*100),
		})
	}
	return plot.Table(os.Stdout, []string{"policy", "arrival", "p50", "p99", "servers", "busiest"}, table)
}

func (r runner) power() error {
	fmt.Println("== Extension: seasonal power budget (550 km / 53°, DL325 @225 W) ==")
	rows, err := power.SeasonalSweep(power.DefaultStarlinkBudget(), power.ServerLoad{Name: "DL325@225", DrawW: 225},
		550, 53, 0, nil)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		table = append(table, []string{
			fmt.Sprintf("%d", row.DayOfYear),
			fmt.Sprintf("%.0f%%", row.EclipseFraction*100),
			fmt.Sprintf("%.0f W", row.AvailableW),
			fmt.Sprintf("%+.0f W", row.HeadroomW),
		})
	}
	if err := plot.Table(os.Stdout, []string{"day of year", "eclipse", "available", "headroom (bus+server)"}, table); err != nil {
		return err
	}
	fmt.Printf("  worst-season headroom: %+.0f W — §4's \"power is perhaps the biggest impediment\", seasonally resolved\n",
		power.WorstSeasonHeadroom(rows))
	return nil
}

func (r runner) cdnlat() error {
	fmt.Println("== Extension: city-level RTT distribution, CDN vs in-orbit edge ==")
	rows, err := experiments.CDNStudy(1000)
	if err != nil {
		return err
	}
	var table [][]string
	for _, row := range rows {
		table = append(table, []string{
			row.Name,
			fmt.Sprintf("%.1f ms", row.P50Ms),
			fmt.Sprintf("%.1f ms", row.P95Ms),
			fmt.Sprintf("%.1f ms", row.MaxMs),
			fmt.Sprintf("%.1f%%", row.Over100msPct),
		})
	}
	return plot.Table(os.Stdout, []string{"edge", "p50", "p95", "max", ">100 ms cities"}, table)
}

func (r runner) servepolicy() error {
	fmt.Println("== Extension: request-routing policies vs offered load (12 cities, 2-core servers) ==")
	rates := []float64{250, 1000, 4000}
	if r.fast {
		rates = []float64{250, 4000}
	}
	rows, err := experiments.ServePolicyStudy(rates)
	if err != nil {
		return err
	}
	var table [][]string
	perPolicy := map[string]*struct{ p99, shed, util []float64 }{}
	var policyOrder []string
	for _, row := range rows {
		table = append(table, []string{
			row.Policy,
			fmt.Sprintf("%.0f/s", row.RatePerSec),
			fmt.Sprintf("%.1f ms", row.P50Ms),
			fmt.Sprintf("%.1f ms", row.P99Ms),
			fmt.Sprintf("%.1f%%", row.ShedPct),
			fmt.Sprintf("%d", row.SatsUsed),
			fmt.Sprintf("%.0f%%", row.MaxUtilPct),
		})
		s, ok := perPolicy[row.Policy]
		if !ok {
			s = &struct{ p99, shed, util []float64 }{}
			perPolicy[row.Policy] = s
			policyOrder = append(policyOrder, row.Policy)
		}
		s.p99 = append(s.p99, row.P99Ms)
		s.shed = append(s.shed, row.ShedPct)
		s.util = append(s.util, row.MaxUtilPct)
	}
	var series []plot.Series
	for _, name := range policyOrder {
		s := perPolicy[name]
		series = append(series,
			plot.Series{Name: name + "_p99_ms", X: rates, Y: s.p99},
			plot.Series{Name: name + "_shed_pct", X: rates, Y: s.shed},
			plot.Series{Name: name + "_max_util_pct", X: rates, Y: s.util},
		)
	}
	if err := r.writeCSV("fig_serve_policies.csv", false, series...); err != nil {
		return err
	}
	return plot.Table(os.Stdout, []string{"policy", "offered", "p50", "p99", "shed", "sats", "busiest"}, table)
}
