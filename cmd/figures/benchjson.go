package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchjson mode: post-process `go test -bench` text output into a
// machine-readable BENCH_obs.json so b.ReportMetric headline values
// (worst-nearest-rtt-ms, sticky-transfer-median-ms, ...) become a perf
// trajectory the repo can track across commits.
//
//	go test -bench . -run '^$' | figures -benchjson - -benchout BENCH_obs.json

// benchResult is one parsed benchmark line.
type benchResult struct {
	Name       string             `json:"name"`       // without the Benchmark prefix / -P suffix
	Iterations int64              `json:"iterations"` // b.N of the final run
	Metrics    map[string]float64 `json:"metrics"`    // unit -> value, ns/op and ReportMetric units alike
}

// benchFile is the BENCH_obs.json document.
type benchFile struct {
	GeneratedUnix int64         `json:"generated_unix"`
	Source        string        `json:"source"`
	Benchmarks    []benchResult `json:"benchmarks"`
}

// parseBenchOutput extracts benchmark result lines from `go test -bench`
// output, tolerating the surrounding goos/pkg/PASS chatter. Repeated runs of
// the same benchmark keep the last result.
func parseBenchOutput(r io.Reader) ([]benchResult, error) {
	byName := map[string]benchResult{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // a FAIL or SKIP marker, not a result line
		}
		res := benchResult{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q on line %q", fields[i], sc.Text())
			}
			res.Metrics[fields[i+1]] = v
		}
		if _, seen := byName[name]; !seen {
			order = append(order, name)
		}
		byName[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]benchResult, 0, len(order))
	for _, n := range order {
		out = append(out, byName[n])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// benchJSON reads bench output from inPath ("-" = stdin) and writes
// BENCH_obs.json to outPath.
func benchJSON(inPath, outPath string) error {
	var in io.Reader = os.Stdin
	source := "stdin"
	if inPath != "-" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		source = inPath
	}
	results, err := parseBenchOutput(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines in %s", source)
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benchFile{
		GeneratedUnix: time.Now().Unix(),
		Source:        source,
		Benchmarks:    results,
	}); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), outPath)
	return nil
}
