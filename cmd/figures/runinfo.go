package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"repro/internal/obs"
)

// figTiming is one figure's wall-time and work volume in a run.
type figTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// Samples is the number of parallelFor sweep iterations the figure
	// consumed (0 for table-only figures that don't sweep).
	Samples uint64 `json:"samples"`
}

// runInfo is the machine-readable run artifact (results/runinfo.json):
// per-figure durations and sample counts plus enough Go/host metadata to
// compare runs across machines and commits.
type runInfo struct {
	GeneratedUnix   int64       `json:"generated_unix"`
	GoVersion       string      `json:"go_version"`
	GOOS            string      `json:"goos"`
	GOARCH          string      `json:"goarch"`
	NumCPU          int         `json:"num_cpu"`
	Hostname        string      `json:"hostname,omitempty"`
	Fast            bool        `json:"fast"`
	Figures         []figTiming `json:"figures"`
	TotalSeconds    float64     `json:"total_seconds"`
	SweepIterations uint64      `json:"sweep_iterations"`

	// Shared-ephemeris cache outcome for the whole run: how many snapshot
	// requests were served from cached frames vs propagated fresh.
	EphemCacheHits   uint64 `json:"ephem_cache_hits"`
	EphemCacheMisses uint64 `json:"ephem_cache_misses"`

	// Frozen-graph routing activity: topology freezes (one per queried
	// snapshot), their summed directed edge counts, and routing queries
	// served from frozen CSR adjacency.
	NetgraphFreezes      uint64 `json:"netgraph_freezes"`
	NetgraphDeltaFreezes uint64 `json:"netgraph_delta_freezes"`
	NetgraphFrozenEdges  uint64 `json:"netgraph_frozen_edges"`
	NetgraphQueries      uint64 `json:"netgraph_queries"`

	// Flight-recorder outcome: one timeline frame per figure, plus the
	// streaming point-to-point routing-query latency estimates (ms) at the
	// end of the run and the SLO verdicts over the recorded frames.
	TimelineFrames int          `json:"timeline_frames,omitempty"`
	PathQueryP50Ms float64      `json:"netgraph_path_ms_p50,omitempty"`
	PathQueryP95Ms float64      `json:"netgraph_path_ms_p95,omitempty"`
	PathQueryP99Ms float64      `json:"netgraph_path_ms_p99,omitempty"`
	SLOs           []sloSummary `json:"slos,omitempty"`
}

// sloSummary is the compact runinfo form of one SLO verdict.
type sloSummary struct {
	Name       string  `json:"name"`
	Met        bool    `json:"met"`
	Compliance float64 `json:"compliance"`
}

func newRunInfo(fast bool) runInfo {
	host, _ := os.Hostname()
	return runInfo{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Hostname:  host,
		Fast:      fast,
	}
}

func writeRunInfo(path string, info runInfo) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(info)
}

// printTimingTable renders the per-figure timing summary on stderr (stdout
// carries the figures themselves).
func printTimingTable(info runInfo) {
	tw := tabwriter.NewWriter(os.Stderr, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "figure\tseconds\tsamples")
	for _, ft := range info.Figures {
		fmt.Fprintf(tw, "%s\t%.2f\t%d\n", ft.Name, ft.Seconds, ft.Samples)
	}
	fmt.Fprintf(tw, "total\t%.2f\t%d\n", info.TotalSeconds, info.SweepIterations)
	tw.Flush()
}

// writeChromeTrace dumps the run's spans for about://tracing / Perfetto.
func writeChromeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return tr.WriteChromeTrace(f)
}
