// Command latencymap renders a world map of in-orbit edge latency: for
// each grid cell, the RTT to the nearest satellite-server and how many
// servers are in view. Output is a CSV grid plus an ASCII heat map — the
// "compute wherever you want" picture of §3.1 at a glance.
//
// Usage:
//
//	latencymap -name starlink -step 5 -out latency.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/units"
	"repro/internal/visibility"
)

type options struct {
	name    string
	stepDeg float64
	atSec   float64
	outPath string
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("latencymap", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.name, "name", "starlink", "constellation: starlink, kuiper, telesat")
	fs.Float64Var(&o.stepDeg, "step", 5, "grid step in degrees")
	fs.Float64Var(&o.atSec, "t", 0, "snapshot time (seconds after epoch)")
	fs.StringVar(&o.outPath, "out", "", "optional CSV output path")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.stepDeg <= 0 || o.stepDeg > 30 {
		return o, fmt.Errorf("step %v out of (0,30]", o.stepDeg)
	}
	return o, nil
}

func buildNamed(name string) (*constellation.Constellation, error) {
	switch name {
	case "starlink":
		return constellation.StarlinkPhase1(constellation.Config{})
	case "kuiper":
		return constellation.Kuiper(constellation.Config{})
	case "telesat":
		return constellation.Telesat(constellation.Config{})
	}
	return nil, fmt.Errorf("unknown constellation %q (want starlink, kuiper, telesat)", name)
}

// glyph maps a cell's nearest-server RTT to a heat-map character.
func glyph(rttMs float64, covered bool) byte {
	switch {
	case !covered:
		return '.'
	case rttMs < 5:
		return '#'
	case rttMs < 8:
		return '+'
	case rttMs < 12:
		return '-'
	default:
		return ' '
	}
}

// run sweeps the lat/lon grid and writes the ASCII heat map to out and, when
// csv is non-nil, the per-cell rows.
func run(out, csv io.Writer, o options) error {
	c, err := buildNamed(o.name)
	if err != nil {
		return err
	}
	obs := visibility.NewObserver(c)
	snap := c.Snapshot(o.atSec)

	if csv != nil {
		fmt.Fprintln(csv, "lat,lon,nearest_rtt_ms,reachable")
	}

	fmt.Fprintf(out, "%s at t=%.0fs — nearest-server RTT: '#'<5ms '+'<8ms '-'<12ms ' '>=12ms '.'=uncovered\n",
		c.Name, o.atSec)
	covered, total := 0, 0
	for lat := 90.0; lat >= -90; lat -= o.stepDeg {
		row := make([]byte, 0, int(360/o.stepDeg)+1)
		for lon := -180.0; lon <= 180; lon += o.stepDeg {
			g := geo.LatLon{LatDeg: lat, LonDeg: lon}.ECEF()
			_, slant, ok := obs.Nearest(g, snap)
			rtt := 0.0
			if ok {
				rtt = units.RTTMs(slant)
				covered++
			}
			total++
			row = append(row, glyph(rtt, ok))
			if csv != nil {
				n := obs.CountReachable(g, snap)
				fmt.Fprintf(csv, "%.1f,%.1f,%.3f,%d\n", lat, lon, rtt, n)
			}
		}
		fmt.Fprintf(out, "%6.1f |%s|\n", lat, row)
	}
	fmt.Fprintf(out, "coverage: %.1f%% of grid cells see at least one satellite-server\n",
		100*float64(covered)/float64(total))
	return nil
}

func main() {
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fatal(err)
	}
	var csv io.Writer
	if o.outPath != "" {
		f, err := os.Create(o.outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		defer w.Flush()
		csv = w
	}
	if err := run(os.Stdout, csv, o); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "latencymap:", err)
	os.Exit(1)
}
