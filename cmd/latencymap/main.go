// Command latencymap renders a world map of in-orbit edge latency: for
// each grid cell, the RTT to the nearest satellite-server and how many
// servers are in view. Output is a CSV grid plus an ASCII heat map — the
// "compute wherever you want" picture of §3.1 at a glance.
//
// Usage:
//
//	latencymap -name starlink -step 5 -out latency.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/units"
	"repro/internal/visibility"
)

func main() {
	var (
		name = flag.String("name", "starlink", "constellation: starlink, kuiper, telesat")
		step = flag.Float64("step", 5, "grid step in degrees")
		at   = flag.Float64("t", 0, "snapshot time (seconds after epoch)")
		out  = flag.String("out", "", "optional CSV output path")
	)
	flag.Parse()

	var (
		c   *constellation.Constellation
		err error
	)
	switch *name {
	case "starlink":
		c, err = constellation.StarlinkPhase1(constellation.Config{})
	case "kuiper":
		c, err = constellation.Kuiper(constellation.Config{})
	case "telesat":
		c, err = constellation.Telesat(constellation.Config{})
	default:
		err = fmt.Errorf("unknown constellation %q", *name)
	}
	if err != nil {
		fatal(err)
	}
	if *step <= 0 || *step > 30 {
		fatal(fmt.Errorf("step %v out of (0,30]", *step))
	}

	obs := visibility.NewObserver(c)
	snap := c.Snapshot(*at)

	var csv *bufio.Writer
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		csv = bufio.NewWriter(f)
		defer csv.Flush()
		fmt.Fprintln(csv, "lat,lon,nearest_rtt_ms,reachable")
	}

	// ASCII heat map: one character per cell, latitude rows top-down.
	glyph := func(rttMs float64, covered bool) byte {
		switch {
		case !covered:
			return '.'
		case rttMs < 5:
			return '#'
		case rttMs < 8:
			return '+'
		case rttMs < 12:
			return '-'
		default:
			return ' '
		}
	}
	fmt.Printf("%s at t=%.0fs — nearest-server RTT: '#'<5ms '+'<8ms '-'<12ms ' '>=12ms '.'=uncovered\n",
		c.Name, *at)
	covered, total := 0, 0
	for lat := 90.0; lat >= -90; lat -= *step {
		row := make([]byte, 0, int(360 / *step)+1)
		for lon := -180.0; lon <= 180; lon += *step {
			g := geo.LatLon{LatDeg: lat, LonDeg: lon}.ECEF()
			_, slant, ok := obs.Nearest(g, snap)
			rtt := 0.0
			if ok {
				rtt = units.RTTMs(slant)
				covered++
			}
			total++
			row = append(row, glyph(rtt, ok))
			if csv != nil {
				n := obs.CountReachable(g, snap)
				fmt.Fprintf(csv, "%.1f,%.1f,%.3f,%d\n", lat, lon, rtt, n)
			}
		}
		fmt.Printf("%6.1f |%s|\n", lat, row)
	}
	fmt.Printf("coverage: %.1f%% of grid cells see at least one satellite-server\n",
		100*float64(covered)/float64(total))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "latencymap:", err)
	os.Exit(1)
}
