package main

import (
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags([]string{"-name", "kuiper", "-step", "10", "-t", "120"})
	if err != nil {
		t.Fatal(err)
	}
	if o.name != "kuiper" || o.stepDeg != 10 || o.atSec != 120 {
		t.Fatalf("parsed %+v", o)
	}
	for _, args := range [][]string{
		{"-step", "0"},
		{"-step", "31"},
		{"-nope"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestBuildNamed(t *testing.T) {
	for _, name := range []string{"starlink", "kuiper", "telesat"} {
		c, err := buildNamed(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Size() == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
	if _, err := buildNamed("atlantis"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	o, err := parseFlags([]string{"-name", "telesat", "-step", "15"})
	if err != nil {
		t.Fatal(err)
	}
	var out, csv strings.Builder
	if err := run(&out, &csv, o); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header + 13 latitude rows (90..-90 at 15°) + coverage summary.
	if len(lines) != 15 {
		t.Fatalf("map has %d lines, want 15:\n%s", len(lines), out.String())
	}
	if !strings.Contains(lines[0], "Telesat at t=0s") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], "coverage:") {
		t.Fatalf("missing coverage summary: %q", lines[len(lines)-1])
	}
	// Telesat has polar shells: the pole rows must be covered. Glyphs sit
	// between the pipes; the latitude label before them contains a '.'.
	glyphs := lines[1][strings.Index(lines[1], "|")+1 : strings.LastIndex(lines[1], "|")]
	if strings.Contains(glyphs, ".") {
		t.Fatalf("north pole row uncovered: %q", lines[1])
	}

	csvLines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if csvLines[0] != "lat,lon,nearest_rtt_ms,reachable" {
		t.Fatalf("csv header = %q", csvLines[0])
	}
	// 13 latitude rows × 25 longitude columns.
	if len(csvLines) != 1+13*25 {
		t.Fatalf("csv has %d lines, want %d", len(csvLines), 1+13*25)
	}
}
