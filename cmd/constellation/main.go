// Command constellation inspects the preset LEO constellations: shell
// tables, instantaneous positions, ISL topology statistics, and TLE export
// for interoperability with external satellite tooling.
//
// Usage:
//
//	constellation -name starlink -info
//	constellation -name kuiper -tle > kuiper.tle
//	constellation -name starlink -snapshot 600 | head
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/constellation"
	"repro/internal/geo"
	"repro/internal/isl"
	"repro/internal/plot"
	"repro/internal/tle"
	"repro/internal/units"
)

func main() {
	var (
		name     = flag.String("name", "starlink", "constellation: starlink, kuiper, telesat")
		info     = flag.Bool("info", false, "print the shell table and ISL statistics")
		exportT  = flag.Bool("tle", false, "export the constellation as a TLE catalog to stdout")
		snapshot = flag.Float64("snapshot", -1, "print per-satellite subpoints at t seconds after epoch")
	)
	flag.Parse()

	c, err := buildNamed(*name)
	if err != nil {
		fatal(err)
	}
	any := false
	if *info {
		any = true
		if err := printInfo(os.Stdout, c); err != nil {
			fatal(err)
		}
	}
	if *exportT {
		any = true
		if err := exportTLE(os.Stdout, c); err != nil {
			fatal(err)
		}
	}
	if *snapshot >= 0 {
		any = true
		if err := printSnapshot(os.Stdout, c, *snapshot); err != nil {
			fatal(err)
		}
	}
	if !any {
		if err := printInfo(os.Stdout, c); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "constellation:", err)
	os.Exit(1)
}

func buildNamed(name string) (*constellation.Constellation, error) {
	switch name {
	case "starlink":
		return constellation.StarlinkPhase1(constellation.Config{})
	case "kuiper":
		return constellation.Kuiper(constellation.Config{})
	case "telesat":
		return constellation.Telesat(constellation.Config{})
	}
	return nil, fmt.Errorf("unknown constellation %q (want starlink, kuiper, telesat)", name)
}

func printInfo(out io.Writer, c *constellation.Constellation) error {
	fmt.Fprintf(out, "%s: %d satellites, %d shells\n\n", c.Name, c.Size(), len(c.Shells))
	var rows [][]string
	for _, sh := range c.Shells {
		rows = append(rows, []string{
			sh.Name,
			fmt.Sprintf("%.0f km", sh.AltitudeKm),
			fmt.Sprintf("%.1f°", sh.InclinationDeg),
			fmt.Sprintf("%d x %d", sh.Planes, sh.SatsPerPlane),
			fmt.Sprintf("%d", sh.Count()),
			fmt.Sprintf("%.0f°", sh.MinElevationDeg),
			fmt.Sprintf("%.1f min", units.OrbitalPeriodSec(sh.AltitudeKm)/60),
			fmt.Sprintf("%.2f km/s", units.OrbitalVelocityKmS(sh.AltitudeKm)),
		})
	}
	if err := plot.Table(out, []string{
		"shell", "altitude", "inclination", "planes x sats", "total", "min elev", "period", "velocity",
	}, rows); err != nil {
		return err
	}

	grid := isl.NewPlusGrid(c)
	stats, err := grid.StatsAt(c.Snapshot(0))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n+grid ISLs: %d links, degree %d-%d, length %.0f-%.0f km (mean %.0f, %.2f ms)\n",
		stats.Links, stats.MinDegree, stats.MaxDegree, stats.MinKm, stats.MaxKm, stats.MeanKm, stats.MeanLatencyMs)
	return nil
}

func exportTLE(out io.Writer, c *constellation.Constellation) error {
	w := bufio.NewWriter(out)
	defer w.Flush()
	for _, sat := range c.Satellites {
		t := tle.FromElements(sat.Name(c.Shells), 90000+sat.ID, sat.Prop.Elements(), 20, 310.0)
		if _, err := fmt.Fprintln(w, t.Encode()); err != nil {
			return err
		}
	}
	return nil
}

func printSnapshot(out io.Writer, c *constellation.Constellation, tSec float64) error {
	w := bufio.NewWriter(out)
	defer w.Flush()
	if _, err := fmt.Fprintln(w, "id,shell,plane,slot,lat,lon,alt_km"); err != nil {
		return err
	}
	snap := c.Snapshot(tSec)
	for id, pos := range snap {
		ll := geo.FromECEF(pos)
		sat := c.Satellites[id]
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%.3f,%.3f,%.1f\n",
			id, c.Shells[sat.ShellIndex].Name, sat.Plane, sat.Slot, ll.LatDeg, ll.LonDeg, ll.AltKm); err != nil {
			return err
		}
	}
	return nil
}
