package main

import (
	"strings"
	"testing"

	"repro/internal/tle"
)

func TestBuildNamed(t *testing.T) {
	for _, name := range []string{"starlink", "kuiper", "telesat"} {
		c, err := buildNamed(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Size() == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
	if _, err := buildNamed("atlantis"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestPrintInfo(t *testing.T) {
	c, err := buildNamed("kuiper")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := printInfo(&b, c); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Kuiper: 3236 satellites, 3 shells", "kuiper-630", "+grid ISLs: 6472 links"} {
		if !strings.Contains(out, want) {
			t.Fatalf("info output missing %q:\n%s", want, out)
		}
	}
}

func TestExportTLERoundTrips(t *testing.T) {
	c, err := buildNamed("telesat")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := exportTLE(&b, c); err != nil {
		t.Fatal(err)
	}
	got, err := tle.DecodeAll(b.String(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != c.Size() {
		t.Fatalf("exported %d TLEs for %d satellites", len(got), c.Size())
	}
}

func TestPrintSnapshot(t *testing.T) {
	c, err := buildNamed("kuiper")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := printSnapshot(&b, c, 120); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != c.Size()+1 {
		t.Fatalf("snapshot lines = %d, want %d", len(lines), c.Size()+1)
	}
	if lines[0] != "id,shell,plane,slot,lat,lon,alt_km" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,kuiper-") {
		t.Fatalf("first row = %q", lines[1])
	}
}
